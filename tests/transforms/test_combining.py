"""Limited combining (paper section 2.4)."""

from repro.ir import parse_module, verify_module
from repro.transforms import LimitedCombining
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, run

# The paper's example: LR r5=r4 collapsed through an unconditional branch
# and a join point, duplicating the joined code.
PAPER_EXAMPLE = """
data mem: size=64 init=[1,2,3,4,5,6,7,8]

func f(r3, r4):
    LR r5, r4
    AI r6, r3, 1
    B L3
other:
    LA r5, mem
    AI r5, r5, 16
    B L3
L3:
    AI r6, r6, 2
    L r7, 4(r5)
    AI r6, r6, 3
    B L4
L4:
    AI r6, r6, 4
    L r8, 8(r5)
    A r3, r7, r8
    RET
"""


def apply(src):
    before = parse_module(src)
    after = parse_module(src)
    ctx = PassContext(after)
    changed = LimitedCombining().run_on_module(after, ctx)
    verify_module(after)
    return before, after, ctx, changed


def data_base(module):
    return module.layout()["mem"]


class TestPaperExample:
    def test_copy_collapsed(self):
        before, after, ctx, changed = apply(PAPER_EXAMPLE)
        assert changed
        assert ctx.stats.get("combining.copies-collapsed", 0) >= 1
        base = data_base(before)
        assert_equivalent(before, after, "f", [[0, base], [7, base + 8]])

    def test_original_join_code_kept_for_other_paths(self):
        # 'other' still reaches L3/L4 through the original code. It is
        # unreachable in this function, but combining must not delete it
        # (unreachable-code elimination does that later).
        _, after, _, _ = apply(PAPER_EXAMPLE)
        labels = {bb.label for bb in after.functions["f"].blocks}
        assert "L3" in labels and "L4" in labels

    def test_duplicate_path_has_no_copy(self):
        before, after, _, _ = apply(PAPER_EXAMPLE)
        base = data_base(before)
        r = run(after, "f", [0, base])
        executed = [i for i, _ in [] ] # placeholder
        # The executed path must not contain the LR r5, r4 copy.
        from repro.machine.interpreter import run_function
        r = run_function(after, "f", [0, base], record_trace=True)
        assert all(not (i.is_copy and str(i.rd) == "r5") for i, _ in r.trace)


class TestWithinBlock:
    def test_local_collapse(self):
        src = """
func f(r3):
    LR r4, r3
    AI r5, r4, 1
    LR r3, r5
    RET
"""
        before, after, ctx, changed = apply(src)
        assert changed
        assert_equivalent(before, after, "f", [[1], [-2]])

    def test_no_collapse_when_dest_live_after(self):
        src = """
func f(r3):
    LR r4, r3
    AI r3, r4, 1
    A r3, r3, r4
    RET
"""
        # r4 used twice: last use is the A; dest dead after -> collapse OK.
        before, after, ctx, changed = apply(src)
        assert_equivalent(before, after, "f", [[3]])

    def test_no_collapse_when_source_redefined(self):
        src = """
func f(r3):
    LR r4, r3
    LI r3, 9
    A r3, r3, r4
    RET
"""
        before, after, ctx, changed = apply(src)
        assert not changed
        assert_equivalent(before, after, "f", [[3]])

    def test_no_collapse_when_dest_redefined_before_use(self):
        src = """
func f(r3):
    LR r4, r3
    LI r4, 9
    A r3, r3, r4
    RET
"""
        before, after, ctx, changed = apply(src)
        assert_equivalent(before, after, "f", [[3]])


class TestBoundaries:
    def test_search_stops_at_call(self):
        src = """
func f(r3):
    LR r4, r3
    CALL print_int, 1
    A r3, r3, r4
    RET
"""
        before, after, ctx, changed = apply(src)
        assert not changed
        assert_equivalent(before, after, "f", [[3]])

    def test_search_stops_at_conditional_branch(self):
        src = """
func f(r3):
    LR r4, r3
    CI cr0, r3, 0
    BT out, cr0.lt
    A r3, r3, r4
    RET
out:
    A r3, r4, r4
    RET
"""
        before, after, ctx, changed = apply(src)
        # dest is live past the conditional branch: no collapse.
        assert not changed
        assert_equivalent(before, after, "f", [[3], [-3]])

    def test_window_limit_respected(self):
        body = "\n".join(f"    AI r6, r6, 1" for _ in range(60))
        src = f"""
func f(r3):
    LR r4, r3
{body}
    A r3, r6, r4
    RET
"""
        before, after, ctx, changed = apply(src)
        assert not changed  # last use beyond the 40-instruction window
        assert_equivalent(before, after, "f", [[3]])

    def test_self_copy_ignored(self):
        src = "func f(r3):\n    LR r3, r3\n    RET"
        _, _, _, changed = apply(src)
        assert not changed
