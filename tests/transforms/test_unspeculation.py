"""Unspeculation (paper section 2.2)."""

from repro.ir import parse_module, verify_module
from repro.transforms import Straighten, Unspeculation
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, run

FLAG_EXAMPLE = """
data out: size=8

func f(r3):
    LA r9, out
    LI r4, 1
    CI cr0, r3, 0
    BT cold, cr0.gt
    B join
cold:
    LI r5, 99
    ST 4(r9), r5
    LI r4, 0
join:
    ST 0(r9), r4
    LR r3, r4
    RET
"""


def apply(src, rounds=None):
    before = parse_module(src)
    after = parse_module(src)
    ctx = PassContext(after)
    Unspeculation().run_on_module(after, ctx)
    verify_module(after)
    return before, after, ctx


class TestFlagExample:
    """The paper's `flag=1; if (cond) {...; flag=0;}` C example."""

    def test_semantics_preserved(self):
        before, after, _ = apply(FLAG_EXAMPLE)
        assert_equivalent(before, after, "f", [[0], [5], [-5]])

    def test_push_happened(self):
        _, after, ctx = apply(FLAG_EXAMPLE)
        assert ctx.stats.get("unspeculation.instrs-pushed", 0) >= 1

    def test_taken_path_shorter_after(self):
        before, after, _ = apply(FLAG_EXAMPLE)
        # On the path where the branch is taken (flag later overwritten),
        # the speculative LI no longer executes.
        steps_before = run(before, "f", [5]).steps
        steps_after = run(after, "f", [5]).steps
        assert steps_after < steps_before

    def test_untaken_path_not_longer(self):
        before, after, _ = apply(FLAG_EXAMPLE)
        assert run(after, "f", [0]).steps <= run(before, "f", [0]).steps + 1


class TestConditions:
    def test_side_effecting_instruction_not_pushed(self):
        src = """
data out: size=8
func f(r3):
    LA r9, out
    ST 4(r9), r3
    CI cr0, r3, 0
    BT skip, cr0.gt
    LI r4, 1
    ST 0(r9), r4
skip:
    LI r3, 0
    RET
"""
        before, after, ctx = apply(src)
        assert_equivalent(before, after, "f", [[0], [5]])
        # The ST before the branch must stay put.
        entry = after.functions["f"].blocks[0]
        assert any(i.is_store for i in entry.instrs)

    def test_dest_used_by_branch_not_pushed(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BT neg, cr0.lt
    LI r3, 1
    RET
neg:
    LI r3, -1
    RET
"""
        before, after, ctx = apply(src)
        assert_equivalent(before, after, "f", [[3], [-3], [0]])

    def test_live_on_both_paths_not_pushed(self):
        src = """
func f(r3):
    LI r4, 7
    CI cr0, r3, 0
    BT other, cr0.lt
    A r3, r3, r4
    RET
other:
    S r3, r3, r4
    RET
"""
        before, after, ctx = apply(src)
        assert ctx.stats.get("unspeculation.instrs-pushed", 0) == 0
        assert_equivalent(before, after, "f", [[3], [-3]])

    def test_never_pushed_into_loop(self):
        src = """
func f(r3):
    LI r4, 5
    CI cr0, r3, 0
    BT loop, cr0.gt
    LI r3, 0
    RET
loop:
    A r3, r3, r4
    AI r4, r4, -1
    CI cr1, r4, 0
    BF loop, cr1.eq
done:
    RET
"""
        before, after, ctx = apply(src)
        assert_equivalent(before, after, "f", [[2], [-2], [0]])
        # r4's definition is used inside the loop: it stays outside
        # (pushing it onto the loop-entry edge would be fine, but pushing
        # INTO the loop body would re-execute it).
        loop_block = after.functions["f"].block("loop")
        assert all(
            not (i.opcode == "LI" and i.imm == 5) for i in loop_block.instrs
        )

    def test_speculative_code_pushed_out_of_loop_exit(self):
        src = """
func f(r3):
    LI r5, 0
loop:
    AI r5, r5, 2
    AI r3, r3, -1
    CI cr0, r3, 0
    BF loop, cr0.eq
after:
    LR r3, r5
    RET
"""
        # r5's accumulation is used only after the loop... and each
        # iteration's value feeds the next, so it must NOT move. Check
        # semantics only.
        before, after, ctx = apply(src)
        assert_equivalent(before, after, "f", [[1], [4]])


class TestGroupMotion:
    def test_whole_diamond_pushed(self):
        # A single-entry single-exit diamond computing r7, needed only on
        # the fallthrough side of the later branch.
        src = """
data t: size=8
func f(r3, r4):
    CI cr2, r4, 0
    BT dia_else, cr2.lt
dia_then:
    LI r7, 10
    B dia_join
dia_else:
    LI r7, 20
dia_join:
    AI r7, r7, 1
decide:
    CI cr0, r3, 0
    BT skip, cr0.eq
use:
    A r3, r3, r7
    RET
skip:
    LI r3, -1
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        ctx = PassContext(after)
        Unspeculation().run_on_module(after, ctx)
        verify_module(after)
        args = [[0, 1], [0, -1], [5, 1], [5, -1]]
        assert_equivalent(before, after, "f", args)
        if ctx.stats.get("unspeculation.groups-pushed", 0):
            # Group moved: the taken (skip) path no longer runs the diamond.
            assert run(after, "f", [0, 1]).steps < run(before, "f", [0, 1]).steps


class TestIdempotence:
    def test_stabilises(self):
        after = parse_module(FLAG_EXAMPLE)
        ctx = PassContext(after)
        Unspeculation().run_on_module(after, ctx)
        first = [str(i) for i in after.functions["f"].instructions()]
        Unspeculation().run_on_module(after, ctx)
        assert [str(i) for i in after.functions["f"].instructions()] == first
