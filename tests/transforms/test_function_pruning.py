"""Regression: a pass may delete functions mid-iteration.

``PassManager._run_pass`` iterates a snapshot of the function names and
used to index ``module.functions[name]`` directly — a pass that prunes a
later function while an earlier one is being processed crashed the
manager with a ``KeyError``. Deleted names must simply be skipped, on
both the serial and the parallel paths.
"""

from repro.ir import format_module, parse_module
from repro.transforms import Pass
from repro.transforms.pass_manager import PassManager

SRC = """
func a(r3):
    AI r3, r3, 1
    RET

func b(r3):
    AI r3, r3, 2
    RET

func c(r3):
    AI r3, r3, 3
    RET
"""


class _PruneOthers(Pass):
    """Processing ``a`` deletes ``b`` and ``c`` from the module."""

    name = "prune-others"

    def run_on_function(self, fn, ctx):
        if fn.name != "a":
            return False
        removed = False
        for other in ("b", "c"):
            removed |= ctx.module.functions.pop(other, None) is not None
        return removed


def test_serial_manager_survives_pruning():
    module = parse_module(SRC)
    manager = PassManager([_PruneOthers()])
    manager.run(module)  # KeyError before the fix
    assert list(module.functions) == ["a"]
    assert manager.module_changed


def test_parallel_manager_survives_pruning():
    module = parse_module(SRC)
    serial = parse_module(SRC)
    PassManager([_PruneOthers()], jobs=1).run(serial)
    PassManager([_PruneOthers()], jobs=3).run(module)
    assert format_module(module) == format_module(serial)
