"""Pass framework, block relayout, SESE regions."""

import pytest

from repro.analysis.regions import consecutive_sese_groups, is_sese_run
from repro.ir import parse_function, parse_module, verify_function
from repro.ir.instructions import make_ret
from repro.transforms import Pass, PassContext, PassManager, Straighten
from repro.transforms.layout import relayout_blocks

from support import assert_equivalent


class _Breaker(Pass):
    name = "breaker"

    def run_on_function(self, fn, ctx):
        fn.blocks[0].terminator.target = "nowhere"
        return True


class _Counter(Pass):
    name = "counter"

    def run_on_function(self, fn, ctx):
        ctx.bump("counter.calls")
        return False


SRC = """
func f(r3):
entry:
    CI cr0, r3, 0
    BT right, cr0.lt
left:
    AI r3, r3, 1
    B join
right:
    AI r3, r3, 2
join:
    RET
"""


class TestPassManager:
    def test_verification_catches_broken_pass(self):
        module = parse_module(SRC)
        with pytest.raises(RuntimeError, match="breaker"):
            PassManager([_Breaker()]).run(module)

    def test_verification_can_be_disabled(self):
        module = parse_module(SRC)
        PassManager([_Breaker()], verify=False).run(module)  # no raise

    def test_stats_and_timings_collected(self):
        module = parse_module(SRC)
        manager = PassManager([_Counter(), _Counter()])
        ctx = manager.run(module)
        assert ctx.stats["counter.calls"] == 2
        assert manager.timings["counter"] >= 0
        assert manager.total_time() >= 0

    def test_context_profile_helpers(self):
        module = parse_module(SRC)
        ctx = PassContext(module)
        assert ctx.edge_count("f", "a", "b") is None
        ctx.edge_profile = {("f", "a", "b"): 7}
        assert ctx.edge_count("f", "a", "b") == 7
        assert ctx.edge_count("f", "x", "y") == 0
        ctx.block_profile = {("f", "entry"): 3}
        assert ctx.block_count("f", "entry") == 3


TWO_FN_SRC = SRC + """
func g(r3):
    AI r3, r3, 1
    RET
"""


class _TouchOnly(Pass):
    """Changes (and admits changing) only the named function."""

    name = "touch-only"

    def __init__(self, target: str, lie: bool = False):
        self.target = target
        self.lie = lie

    def run_on_function(self, fn, ctx):
        if fn.name != self.target:
            return False
        fn.blocks[0].instrs[0].imm = 99  # CI/AI immediate, stays valid
        return not self.lie


class _BreakOther(Pass):
    """Breaks `victim` but reports changing only `admitted`."""

    name = "break-other"

    def __init__(self, admitted: str, victim: str):
        self.admitted = admitted
        self.victim = victim

    def run_on_function(self, fn, ctx):
        if fn.name == self.victim:
            fn.blocks[0].terminator.target = "nowhere"
        # Attribution trusts the return value, not what really happened.
        return fn.name == self.admitted


class _ModuleLevel(Pass):
    name = "module-level"

    def __init__(self, changed: bool):
        self.changed = changed

    def run_on_module(self, module, ctx):
        return self.changed


class TestChangeTracking:
    """Satellites: per-pass changed tracking + selective re-verification."""

    def test_pass_changes_and_module_changed(self):
        module = parse_module(TWO_FN_SRC)
        manager = PassManager([_TouchOnly("g"), _Counter()])
        manager.run(module)
        assert manager.pass_changes == {"touch-only": True, "counter": False}
        assert manager.module_changed

    def test_nothing_changed(self):
        module = parse_module(TWO_FN_SRC)
        manager = PassManager([_Counter()])
        manager.run(module)
        assert manager.module_changed is False

    def test_per_function_stats_recorded(self):
        module = parse_module(TWO_FN_SRC)  # two functions, one touched
        ctx = PassManager([_TouchOnly("g")]).run(module)
        assert ctx.stats["pass.touch-only.changed_functions"] == 1
        assert ctx.stats["pass.touch-only.unchanged_functions"] == 1

    def test_only_changed_functions_reverified(self):
        # The pass corrupts g but only admits changing f: selective
        # verification skips g at the pass boundary (the pass name is
        # never blamed), but the end-of-pipeline barrier still refuses
        # to hand out the corrupt module.
        module = parse_module(TWO_FN_SRC)
        with pytest.raises(RuntimeError, match="end of pipeline"):
            PassManager([_BreakOther(admitted="f", victim="g")]).run(module)
        # Admitting the changed function catches the breakage at the
        # pass itself, with per-pass attribution.
        module = parse_module(TWO_FN_SRC)
        with pytest.raises(RuntimeError, match="on g"):
            PassManager([_BreakOther(admitted="g", victim="g")]).run(module)

    def test_unchanged_pass_skips_verification_entirely(self):
        # A pass reporting no change skips per-pass verification — cost
        # scales with what actually changed, and no pass gets blamed for
        # pre-broken IR. The end-of-pipeline barrier still reports the
        # module as a whole.
        module = parse_module(TWO_FN_SRC)
        module.functions["g"].blocks[0].terminator.target = "nowhere"
        with pytest.raises(RuntimeError, match="end of pipeline"):
            PassManager([_Counter()]).run(module)
        # With verification off nothing fires at all.
        module = parse_module(TWO_FN_SRC)
        module.functions["g"].blocks[0].terminator.target = "nowhere"
        PassManager([_Counter()], verify=False).run(module)  # no raise

    def test_module_level_changed_flag_captured(self):
        module = parse_module(TWO_FN_SRC)
        manager = PassManager([_ModuleLevel(True), _ModuleLevel(False)])
        ctx = manager.run(module)
        assert manager.pass_changes["module-level"] is True
        assert ctx.stats["pass.module-level.changed_modules"] == 1

    def test_module_level_pass_verifies_all_functions(self):
        class _ModuleBreaker(Pass):
            name = "module-breaker"

            def run_on_module(self, module, ctx):
                module.functions["g"].blocks[0].terminator.target = "nowhere"
                return True

        module = parse_module(TWO_FN_SRC)
        with pytest.raises(RuntimeError, match="module-breaker"):
            PassManager([_ModuleBreaker()]).run(module)

    def test_compile_result_exposes_changes(self):
        from repro.pipeline import compile_module
        from repro.workloads import workload_by_name

        result = compile_module(workload_by_name("li").fresh_module(), "vliw")
        assert set(result.pass_changes)  # every pass name accounted for
        assert result.module_changed  # the VLIW pipeline definitely fires
        assert any(result.pass_changes.values())


class TestRelayout:
    def test_permutation_preserves_semantics(self):
        before = parse_module(SRC)
        after = parse_module(SRC)
        fn = after.functions["f"]
        order = [fn.block("entry"), fn.block("right"), fn.block("join"), fn.block("left")]
        relayout_blocks(fn, order)
        verify_function(fn)
        assert_equivalent(before, after, "f", [[1], [-1], [0]])
        # The entry's broken fallthrough to 'left' got a trampoline, so
        # 'right' sits right behind it.
        labels = [b.label for b in fn.blocks]
        assert labels[0] == "entry"
        assert labels.index("right") < labels.index("left")

    def test_broken_fallthrough_gets_branch(self):
        fn = parse_function(SRC)
        order = [fn.block("entry"), fn.block("join"), fn.block("left"), fn.block("right")]
        relayout_blocks(fn, order)
        verify_function(fn)
        # 'left' used to fall into 'join'; now it must branch.
        left = fn.block("left")
        assert left.terminator is not None

    def test_conditional_fallthrough_gets_trampoline(self):
        fn = parse_function(SRC)
        # Move 'left' (entry's fallthrough) away from entry.
        order = [fn.block("entry"), fn.block("right"), fn.block("left"), fn.block("join")]
        relayout_blocks(fn, order)
        verify_function(fn)
        # entry ends with BT; its untaken path needs a trampoline to left.
        idx = fn.block_index(fn.block("entry"))
        tramp = fn.blocks[idx + 1]
        assert tramp.instrs[0].opcode == "B"
        assert tramp.instrs[0].target == "left"

    def test_rejects_non_permutation(self):
        fn = parse_function(SRC)
        with pytest.raises(ValueError):
            relayout_blocks(fn, fn.blocks[:-1])

    def test_rejects_moved_entry(self):
        fn = parse_function(SRC)
        order = list(reversed(fn.blocks))
        with pytest.raises(ValueError):
            relayout_blocks(fn, order)


class TestSeseRegions:
    NESTED = """
func f(r3):
entry:
    CI cr0, r3, 0
    BT skip, cr0.lt
d_head:
    CI cr1, r3, 10
    BT d_else, cr1.gt
d_then:
    AI r3, r3, 1
    B d_join
d_else:
    AI r3, r3, 2
d_join:
    AI r3, r3, 3
after:
    AI r3, r3, 4
skip:
    RET
"""

    def test_diamond_is_a_sese_run(self):
        fn = parse_function(self.NESTED)
        start = fn.block_index(fn.block("d_head"))
        end = fn.block_index(fn.block("d_join"))
        assert is_sese_run(fn, start, end)

    def test_diamond_without_join_is_also_sese(self):
        # d_head..d_else has one entry and all exits land on d_join: a
        # legitimate single-entry single-exit unit.
        fn = parse_function(self.NESTED)
        start = fn.block_index(fn.block("d_head"))
        end = fn.block_index(fn.block("d_else"))
        assert is_sese_run(fn, start, end)

    def test_partial_diamond_is_not(self):
        fn = parse_function(self.NESTED)
        start = fn.block_index(fn.block("d_head"))
        end = fn.block_index(fn.block("d_then"))
        assert not is_sese_run(fn, start, end)  # d_then exits past d_else

    def test_run_with_ret_rejected(self):
        fn = parse_function(self.NESTED)
        end = fn.block_index(fn.block("skip"))
        assert not is_sese_run(fn, end, end)  # RET inside, and no follower

    def test_groups_ending_at_index(self):
        fn = parse_function(self.NESTED)
        end = fn.block_index(fn.block("d_join"))
        groups = consecutive_sese_groups(fn, end)
        spans = [
            (fn.blocks[s].label, fn.blocks[e].label) for s, e in groups
        ]
        assert ("d_join", "d_join") in spans
        assert ("d_head", "d_join") in spans
