"""Library call models and machine model presets."""

import pytest

from repro.ir import parse_module
from repro.machine import POWER2, PPC601, RS6000, run_function
from repro.machine.libcalls import LIBRARY_FUNCTIONS, call_effects
from repro.machine.model import MachineModel, PRESETS


class TestLibraryCalls:
    def run_call(self, symbol, args, mem_setup=None, input_values=None):
        nargs = LIBRARY_FUNCTIONS[symbol].nargs
        arg_setup = "\n".join(
            f"    LI r{3 + i}, {v}" for i, v in enumerate(args)
        )
        src = f"""
data buf: size=64 init=[7, 8, 9]
func f():
{arg_setup}
    CALL {symbol}, {nargs}
    RET
"""
        module = parse_module(src)
        return module, run_function(module, "f", [], input_values=input_values)

    def test_print_int(self):
        _, r = self.run_call("print_int", [42])
        assert r.output == [42]

    def test_read_int(self):
        _, r = self.run_call("read_int", [], input_values=[5, 6])
        assert r.value == 5

    def test_read_int_exhausted_returns_zero(self):
        _, r = self.run_call("read_int", [])
        assert r.value == 0

    def test_abs_min_max(self):
        assert self.run_call("abs_val", [-9])[1].value == 9
        assert self.run_call("min_val", [3, 8])[1].value == 3
        assert self.run_call("max_val", [3, 8])[1].value == 8

    def test_memset_words(self):
        src = """
data buf: size=32
func f():
    LA r3, buf
    LI r4, 77
    LI r5, 3
    CALL memset_words, 3
    L r3, 8(r3)
    RET
"""
        module = parse_module(src)
        r = run_function(module, "f", [])
        assert r.value == 77
        base = module.layout()["buf"]
        assert r.state.mem[base] == 77
        assert r.state.mem.get(base + 12, 0) == 0  # only 3 words filled

    def test_memcpy_words(self):
        src = """
data src_buf: size=16 init=[1, 2, 3, 4]
data dst_buf: size=16
func f():
    LA r3, dst_buf
    LA r4, src_buf
    LI r5, 4
    CALL memcpy_words, 3
    L r3, 12(r3)
    RET
"""
        assert run_function(parse_module(src), "f", []).value == 4

    def test_write_record(self):
        src = """
data rec: size=12 init=[10, 20, 30]
func f():
    LA r3, rec
    LI r4, 3
    CALL write_record, 2
    RET
"""
        r = run_function(parse_module(src), "f", [])
        assert r.output == [10, 20, 30]

    def test_effect_summaries(self):
        assert call_effects("print_int").is_io
        assert not call_effects("print_int").writes_memory
        assert call_effects("memset_words").memory_confined_to_args
        assert call_effects("memcpy_words").reads_memory
        assert call_effects("abs_val") is not None
        assert not call_effects("abs_val").reads_memory
        assert call_effects("no_such_function") is None


class TestMachineModels:
    def test_presets_registered(self):
        assert set(PRESETS) == {"rs6000", "power2", "ppc601"}
        assert PRESETS["rs6000"] is RS6000

    def test_preset_shapes(self):
        assert POWER2.fxu_units > RS6000.fxu_units
        assert POWER2.issue_width > RS6000.issue_width
        assert PPC601.issue_width < RS6000.issue_width
        assert PPC601.cmp_to_branch > RS6000.cmp_to_branch

    def test_with_changes_is_functional(self):
        tweaked = RS6000.with_changes(load_latency=5)
        assert tweaked.load_latency == 5
        assert RS6000.load_latency == 2
        assert tweaked.issue_width == RS6000.issue_width

    def test_models_are_frozen(self):
        with pytest.raises(Exception):
            RS6000.load_latency = 9
