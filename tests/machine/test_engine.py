"""Closure-compiled engine: differential equivalence and its own contract.

The engine's correctness story is differential — ``repro fuzz
--xengine`` hammers it against the tree-walker on generated programs —
so these tests pin the *structured* part of the contract: bit-identical
observations on the real workloads across compilation levels and memory
models, exact step accounting at the budget boundary, deterministic
call-depth containment, per-run reset under executor reuse (the
interpreter's own reuse bug, fixed in the same change), and cache
invalidation on in-place module mutation.
"""

import pytest

from repro.ir import parse_module
from repro.machine import (
    ENGINES,
    ClosureEngine,
    ExecutionError,
    ExecutionLimit,
    MachineState,
    cached_engine,
    run_function,
)
from repro.machine.engine import clear_engine_cache
from repro.machine.interpreter import Interpreter
from repro.pipeline import compile_module
from repro.workloads import suite

WORKLOADS = {w.name: w for w in suite()}


def both(module, fn, args=(), **kw):
    """Run under both executors and return (tree, closure) results."""
    tree = run_function(module, fn, list(args), **kw)
    clos = run_function(module, fn, list(args), engine="closure", **kw)
    return tree, clos


def assert_identical(tree, clos):
    assert clos.value == tree.value
    assert clos.steps == tree.steps
    assert clos.block_counts == tree.block_counts
    if tree.trace is not None:
        assert [(i.opcode, t) for i, t in clos.trace] == [
            (i.opcode, t) for i, t in tree.trace
        ]
    assert clos.state.output == tree.state.output
    assert clos.state.snapshot_mem() == tree.state.snapshot_mem()
    assert clos.state.poison_events == tree.state.poison_events


@pytest.mark.parametrize("name", ["li", "compress"])
@pytest.mark.parametrize("level", ["none", "vliw"])
@pytest.mark.parametrize("mem_model", ["flat", "paged"])
def test_differential_equivalence_on_workloads(name, level, mem_model):
    wl = WORKLOADS[name]
    module = wl.fresh_module()
    if level != "none":
        module = compile_module(module, level=level).module
    tree, clos = both(
        module,
        wl.entry,
        wl.args,
        mem_model=mem_model,
        record_trace=True,
        count_blocks=True,
    )
    assert_identical(tree, clos)


SUMREC = """
func sumto(r3):
entry:
    CI cr0, r3, 0
    BT base, cr0.le
rec:
    A r6, r6, r3
    AI r3, r3, -1
    CALL sumto
    RET
base:
    LR r3, r6
    RET
"""

LOOP = """
func f(r3):
entry:
    LI r4, 0
    MTCTR r3
loop:
    AI r4, r4, 1
    BCT loop
exit:
    LR r3, r4
    RET
"""

RECURSE = """
func f(r3):
entry:
    AI r3, r3, 1
    CALL f
    RET
"""


class TestReuse:
    """One executor instance, many runs: nothing may leak between them."""

    @pytest.mark.parametrize("make", [Interpreter, ClosureEngine])
    def test_two_runs_one_instance(self, make):
        module = parse_module(SUMREC)
        ex = make(module, max_steps=10_000, record_trace=True, count_blocks=True)
        first = ex.run("sumto", [10], MachineState())
        second = ex.run("sumto", [10], MachineState())
        assert second.value == first.value == 55
        assert second.steps == first.steps
        assert second.block_counts == first.block_counts
        assert len(second.trace) == len(first.trace)

    @pytest.mark.parametrize("make", [Interpreter, ClosureEngine])
    def test_reuse_near_step_limit(self, make):
        """The historical bug: accumulated steps from run #1 must not
        push run #2 over the budget."""
        module = parse_module(SUMREC)
        probe = make(module, max_steps=10_000_000)
        need = probe.run("sumto", [10], MachineState()).steps
        ex = make(module, max_steps=need)
        for _ in range(3):  # each run is exactly at the budget
            assert ex.run("sumto", [10], MachineState()).value == 55


class TestStepBudget:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_boundary(self, engine):
        module = parse_module(LOOP)
        need = run_function(module, "f", [50]).steps
        ok = run_function(module, "f", [50], max_steps=need, engine=engine)
        assert ok.value == 50
        with pytest.raises(ExecutionLimit) as exc:
            run_function(module, "f", [50], max_steps=need - 1, engine=engine)
        assert "step budget exhausted in f" in str(exc.value)

    def test_limit_step_count_and_message_match_tree(self):
        module = parse_module(LOOP)
        outcomes = []
        for engine in ENGINES:
            ex = (Interpreter if engine == "tree" else ClosureEngine)(
                module, max_steps=57
            )
            with pytest.raises(ExecutionLimit) as exc:
                ex.run("f", [50], MachineState())
            outcomes.append((ex.steps, str(exc.value)))
        assert outcomes[0] == outcomes[1]


class TestCallDepth:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_unbounded_recursion_is_contained(self, engine):
        module = parse_module(RECURSE)
        with pytest.raises(ExecutionError) as exc:
            run_function(module, "f", [0], engine=engine)
        assert not isinstance(exc.value, ExecutionLimit)
        assert "call depth exceeded entering f" in str(exc.value)

    def test_depth_fault_is_identical(self):
        module = parse_module(RECURSE)
        seen = []
        for engine in ENGINES:
            ex = (Interpreter if engine == "tree" else ClosureEngine)(module)
            with pytest.raises(ExecutionError) as exc:
                ex.run("f", [0], MachineState())
            seen.append((ex.steps, str(exc.value)))
        assert seen[0] == seen[1]


class TestCacheInvalidation:
    def test_in_place_mutation_recompiles(self):
        clear_engine_cache()
        module = parse_module("func f():\n    LI r3, 1\n    RET")
        assert run_function(module, "f", engine="closure").value == 1
        # Mutate the module in place; the fingerprint-keyed cache must
        # miss and recompile, exactly like diffcheck baselines.
        module.functions["f"].blocks[0].instrs[0].imm = 2
        assert run_function(module, "f", engine="closure").value == 2

    def test_direct_engine_revalidates_per_run(self):
        module = parse_module("func f():\n    LI r3, 1\n    RET")
        eng = ClosureEngine(module)
        assert eng.run("f", (), MachineState()).value == 1
        module.functions["f"].blocks[0].instrs[0].imm = 3
        assert eng.run("f", (), MachineState()).value == 3


class TestKnob:
    def test_unknown_engine_rejected(self):
        module = parse_module("func f():\n    RET")
        with pytest.raises(ValueError, match="unknown engine"):
            run_function(module, "f", engine="jit")

    def test_cached_engine_is_reused(self):
        clear_engine_cache()
        module = parse_module("func f():\n    LI r3, 7\n    RET")
        a = cached_engine(module)
        b = cached_engine(module)
        assert a is b

    def test_check_callee_saved_delegates_to_tree(self):
        # ABI checking is the interpreter's job; the engine must still
        # honour the contract by delegating, not by silently skipping.
        wl = WORKLOADS["compress"]
        module = compile_module(wl.fresh_module(), level="vliw").module
        tree, clos = both(
            module, wl.entry, wl.args, check_callee_saved=True
        )
        assert_identical(tree, clos)


class TestPoisonDelegation:
    def test_pre_poisoned_flat_state_matches_tree(self):
        src = "func f(r3):\n    AI r3, r3, 1\n    RET"
        module = parse_module(src)
        results = []
        for make in (Interpreter, ClosureEngine):
            state = MachineState()
            from repro.ir.operands import gpr

            state.taint(gpr(4))  # poison an unrelated register up front
            ex = make(module)
            results.append(ex.run("f", [1], state).value)
        assert results[0] == results[1] == 2
