import pytest

from repro.ir import parse_module
from repro.machine import ExecutionError, ExecutionLimit, run_function
from repro.machine.interpreter import Interpreter, MachineState


def run_src(src, fn="f", args=(), **kw):
    return run_function(parse_module(src), fn, list(args), **kw)


class TestArithmetic:
    def test_constant_return(self):
        assert run_src("func f():\n    LI r3, 42\n    RET").value == 42

    def test_add_args(self):
        src = "func f(r3, r4):\n    A r3, r3, r4\n    RET"
        assert run_src(src, args=[20, 22]).value == 42

    def test_wraps_32bit(self):
        src = "func f(r3):\n    AI r3, r3, 1\n    RET"
        assert run_src(src, args=[2**31 - 1]).value == -(2**31)

    def test_neg_not(self):
        src = "func f(r3):\n    NEG r4, r3\n    NOT r5, r3\n    A r3, r4, r5\n    RET"
        assert run_src(src, args=[7]).value == -7 + ~7

    def test_declared_params_honoured(self):
        src = "func f(r3, r8):\n    S r3, r8, r3\n    RET"
        assert run_src(src, args=[1, 10]).value == 9


class TestMemory:
    SRC = """
data a: size=16 init=[10, 20, 30, 40]

func f(r3):
    LA r4, a
    L r5, 4(r4)
    AI r5, r5, 1
    ST 8(r4), r5
    L r3, 8(r4)
    RET
"""

    def test_load_store(self):
        r = run_src(self.SRC)
        assert r.value == 21

    def test_memory_snapshot(self):
        r = run_src(self.SRC)
        mem = r.state.snapshot_mem()
        layout = parse_module(self.SRC).layout()
        assert mem[layout["a"] + 8] == 21
        assert mem[layout["a"] + 0] == 10

    def test_uninitialised_memory_reads_zero(self):
        src = "data a: size=8\nfunc f(r3):\n    LA r4, a\n    L r3, 4(r4)\n    RET"
        assert run_src(src).value == 0

    def test_update_forms(self):
        src = """
data a: size=12 init=[5, 6, 7]
func f(r3):
    LA r4, a
    LU r5, 4(r4)
    LU r6, 4(r4)
    A r3, r5, r6
    STU 4(r4), r3
    L r7, 0(r4)
    A r3, r3, r7
    RET
"""
        # LU twice reads a[1], a[2]; STU writes a[3]... base walks 4,8,12.
        r = run_src(src)
        assert r.value == (6 + 7) * 2


class TestControlFlow:
    def test_taken_and_untaken_bt(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BT neg, cr0.lt
    LI r3, 1
    RET
neg:
    LI r3, -1
    RET
"""
        assert run_src(src, args=[5]).value == 1
        assert run_src(src, args=[-5]).value == -1

    def test_bct_loop_count(self):
        src = """
func f(r3):
    MTCTR r3
    LI r4, 0
loop:
    AI r4, r4, 1
    BCT loop
done:
    LR r3, r4
    RET
"""
        assert run_src(src, args=[7]).value == 7

    def test_mfctr(self):
        src = "func f(r3):\n    MTCTR r3\n    MFCTR r4\n    LR r3, r4\n    RET"
        assert run_src(src, args=[9]).value == 9

    def test_fallthrough_between_blocks(self):
        src = """
func f(r3):
a:
    LI r4, 1
b:
    AI r4, r4, 1
c:
    LR r3, r4
    RET
"""
        assert run_src(src).value == 2

    def test_infinite_loop_hits_step_limit(self):
        src = "func f(r3):\nloop:\n    B loop"
        with pytest.raises(ExecutionLimit):
            run_src(src, max_steps=1000)


class TestFailureContracts:
    """ExecutionLimit and ExecutionError are distinct contracts: the limit
    means "budget exhausted, verdict unknown", the base error means "the
    execution itself went structurally wrong". The differential checker
    in repro.robustness keys off this split (limit -> inconclusive, keep;
    error -> mismatch, rollback), so pin it down."""

    def test_limit_specialises_error(self):
        assert issubclass(ExecutionLimit, ExecutionError)
        assert not issubclass(ExecutionError, ExecutionLimit)

    def test_budget_exhaustion_raises_the_limit_subtype(self):
        src = "func f(r3):\nloop:\n    B loop"
        with pytest.raises(ExecutionLimit, match="step budget"):
            run_src(src, max_steps=50)

    def test_structural_errors_are_not_limits(self):
        cases = {
            "fell off": "func f(r3):\nlast:\n    LI r3, 1\n    RET\n",
            "dangling": "func f(r3):\n    B gone\nx:\n    RET",
            "unknown data symbol": "func f(r3):\n    LA r4, ghost\n    RET",
        }
        # "fell off": make the only RET unreachable and fall past the end.
        module = parse_module(cases["fell off"])
        module.functions["f"].blocks[-1].instrs.pop()  # drop the RET
        with pytest.raises(ExecutionError) as exc_info:
            run_function(module, "f", [0], max_steps=1000)
        assert not isinstance(exc_info.value, ExecutionLimit)
        for pattern in ("dangling", "unknown data symbol"):
            with pytest.raises(ExecutionError) as exc_info:
                run_src(cases[pattern], max_steps=1000)
            assert not isinstance(exc_info.value, ExecutionLimit)

    def test_limit_boundary_is_exact(self):
        # A straight-line body of exactly max_steps instructions succeeds;
        # one more instruction trips the limit.
        body = "\n".join("    AI r3, r3, 1" for _ in range(9))
        src = f"func f(r3):\n{body}\n    RET"
        assert run_src(src, args=[0], max_steps=10).value == 9
        with pytest.raises(ExecutionLimit):
            run_src(src, args=[0], max_steps=9)


class TestCalls:
    def test_internal_call_passes_args_and_returns(self):
        src = """
func double(r3):
    A r3, r3, r3
    RET
func f(r3):
    CALL double, 1
    AI r3, r3, 1
    RET
"""
        assert run_src(src, args=[10]).value == 21

    def test_library_call_print(self):
        src = "func f(r3):\n    CALL print_int, 1\n    RET"
        r = run_src(src, args=[5])
        assert r.output == [5]

    def test_library_call_read(self):
        src = "func f(r3):\n    CALL read_int, 0\n    RET"
        r = run_src(src, input_values=[77])
        assert r.value == 77

    def test_unknown_callee_raises(self):
        src = "func f(r3):\n    CALL nothing, 0\n    RET"
        with pytest.raises(ExecutionError):
            run_src(src)

    def test_recursion_depth_limited(self):
        src = "func f(r3):\n    CALL f, 1\n    RET"
        with pytest.raises(ExecutionError, match="depth"):
            run_src(src)

    def test_callee_saved_check(self):
        src = """
func clobber(r3):
    LI r20, 99
    RET
func f(r3):
    LI r20, 1
    CALL clobber, 1
    LR r3, r20
    RET
"""
        module = parse_module(src)
        with pytest.raises(ExecutionError, match="ABI"):
            run_function(module, "f", [0], check_callee_saved=True)
        # Without the check the clobber goes through silently.
        assert run_function(module, "f", [0]).value == 99


class TestTracing:
    def test_trace_records_taken_flags(self):
        src = """
func f(r3):
    CI cr0, r3, 0
    BT out, cr0.eq
    LI r3, 1
out:
    RET
"""
        r = run_src(src, args=[0], record_trace=True)
        flags = [taken for instr, taken in r.trace if instr.opcode == "BT"]
        assert flags == [True]
        r = run_src(src, args=[5], record_trace=True)
        flags = [taken for instr, taken in r.trace if instr.opcode == "BT"]
        assert flags == [False]

    def test_block_counts(self):
        src = """
func f(r3):
    MTCTR r3
loop:
    BCT loop
done:
    RET
"""
        r = run_src(src, args=[5], count_blocks=True)
        assert r.block_counts[("f", "loop")] == 5
        assert r.block_counts[("f", "done")] == 1

    def test_trace_includes_callee_instructions(self):
        src = """
func g(r3):
    AI r3, r3, 1
    RET
func f(r3):
    CALL g, 1
    RET
"""
        r = run_src(src, args=[0], record_trace=True)
        ops = [i.opcode for i, _ in r.trace]
        assert "AI" in ops
        assert ops.count("RET") == 2
