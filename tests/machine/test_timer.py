from repro.ir import parse_module
from repro.ir.parser import parse_instr
from repro.machine import POWER2, PPC601, RS6000, run_function, time_trace


def trace_of(lines_with_taken):
    return [(parse_instr(text), taken) for text, taken in lines_with_taken]


class TestBasicIssue:
    def test_independent_ops_dual_issue(self):
        # int + branch-free ops limited by the single shared FXU.
        t = trace_of([("LI r3, 1", None), ("LI r4, 2", None), ("LI r5, 3", None)])
        rep = time_trace(t, RS6000)
        assert rep.cycles == 3  # one FXU: one int op per cycle

    def test_power2_two_fxus(self):
        t = trace_of([("LI r3, 1", None), ("LI r4, 2", None), ("LI r5, 3", None), ("LI r6, 4", None)])
        assert time_trace(t, POWER2).cycles == 2
        assert time_trace(t, RS6000).cycles == 4

    def test_load_use_delay(self):
        t = trace_of([("L r4, 0(r3)", None), ("AI r5, r4, 1", None)])
        rep = time_trace(t, RS6000)
        assert rep.cycles == RS6000.load_latency + 1

    def test_independent_op_hides_load_delay(self):
        t = trace_of(
            [("L r4, 0(r3)", None), ("LI r6, 5", None), ("AI r5, r4, 1", None)]
        )
        assert time_trace(t, RS6000).cycles == 3


class TestBranches:
    def test_untaken_conditional_branch_is_free(self):
        t = trace_of([("CI cr0, r3, 0", None), ("BT x, cr0.eq", False), ("LI r4, 1", None)])
        rep = time_trace(t, RS6000)
        assert rep.cycles == 2  # CI@0, BT@0 (branch unit), LI@1
        assert rep.branch_stall_cycles == 0

    def test_taken_branch_waits_for_compare(self):
        t = trace_of([("CI cr0, r3, 0", None), ("BT x, cr0.eq", True), ("LI r4, 1", None)])
        rep = time_trace(t, RS6000)
        # BT waits until cmp_to_branch after the compare; target folded.
        assert rep.cycles == RS6000.cmp_to_branch + 1
        assert rep.branch_stall_cycles > 0

    def test_separated_compare_makes_taken_branch_free(self):
        # Four FXU ops put the branch a full cmp_to_branch distance after
        # the compare on the one-FXU machine: no stall remains.
        t = trace_of(
            [
                ("CI cr0, r3, 0", None),
                ("LI r4, 1", None),
                ("LI r5, 2", None),
                ("LI r6, 3", None),
                ("LI r9, 5", None),
                ("BT x, cr0.eq", True),
                ("LI r7, 4", None),
            ]
        )
        rep = time_trace(t, RS6000)
        assert rep.branch_stall_cycles == 0

    def test_uncond_branch_base_cost(self):
        # On the two-FXU machine the redirect bubble is visible.
        t = trace_of([("LI r3, 1", None), ("B x", True), ("LI r4, 2", None)])
        base = time_trace(trace_of([("LI r3, 1", None), ("LI r4, 2", None)]), POWER2)
        rep = time_trace(t, POWER2)
        assert rep.cycles > base.cycles

    def test_cond_then_uncond_stall(self):
        close = trace_of(
            [
                ("CI cr0, r3, 0", None),
                ("BT x, cr0.eq", False),
                ("B y", True),
                ("LI r4, 2", None),
            ]
        )
        spaced = trace_of(
            [
                ("CI cr0, r3, 0", None),
                ("BT x, cr0.eq", False),
                ("LI r5, 0", None),
                ("LI r6, 0", None),
                ("LI r7, 0", None),
                ("LI r8, 0", None),
                ("B y", True),
                ("LI r4, 2", None),
            ]
        )
        rep_close = time_trace(close, RS6000)
        rep_spaced = time_trace(spaced, RS6000)
        assert rep_close.uncond_stall_cycles > 0
        assert rep_spaced.uncond_stall_cycles == 0

    def test_bct_free_when_ctr_set_early(self):
        t = trace_of(
            [
                ("MTCTR r3", None),
                ("LI r4, 0", None),
                ("LI r5, 0", None),
                ("LI r6, 0", None),
                ("LI r7, 0", None),
                ("BCT loop", True),
            ]
        )
        assert time_trace(t, RS6000).branch_stall_cycles == 0


class TestPaperCalibration:
    """The paper's annotated xlygetvalue loop costs 11 cycles/iteration."""

    SRC = """
data nodes: size=4096
data cells: size=4096

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""

    def build(self, n):
        m = parse_module(self.SRC)
        lay = m.layout()
        nodes, cells = lay["nodes"], lay["cells"]
        node_init = [0] * (3 * n)
        cell_init = [0] * (2 * n)
        for i in range(n):
            node_init[3 * i + 1] = cells + 8 * i
            node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < n else 0
            cell_init[2 * i + 1] = 100 + i
        m.data["nodes"].init = node_init
        m.data["cells"].init = cell_init
        return m, nodes

    def test_eleven_cycles_per_iteration(self):
        n = 100
        m, nodes = self.build(n)
        r = run_function(m, "xlygetvalue", [100 + n - 1, nodes], record_trace=True)
        rep = time_trace(r.trace, RS6000)
        assert abs(rep.cycles / n - 11.0) < 0.3

    def test_other_models_scale_sensibly(self):
        n = 50
        m, nodes = self.build(n)
        r = run_function(m, "xlygetvalue", [100 + n - 1, nodes], record_trace=True)
        rs = time_trace(r.trace, RS6000).cycles
        p2 = time_trace(r.trace, POWER2).cycles
        p601 = time_trace(r.trace, PPC601).cycles
        assert p2 <= rs  # wider machine never slower
        assert p601 >= rs  # longer compare-to-branch never faster

    def test_ipc_bounded_by_width(self):
        n = 50
        m, nodes = self.build(n)
        r = run_function(m, "xlygetvalue", [100 + n - 1, nodes], record_trace=True)
        rep = time_trace(r.trace, RS6000)
        assert 0 < rep.ipc <= RS6000.issue_width


class TestEmptyTrace:
    def test_zero_cycles(self):
        rep = time_trace([], RS6000)
        assert rep.cycles == 0
        assert rep.instructions == 0
        assert rep.ipc == 0.0
