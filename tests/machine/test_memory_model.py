"""The paged (faulting) memory model and the poison discipline.

The flat model is the historical substrate: every address reads 0, writes
go anywhere, arithmetic wraps. The paged model is the containment
substrate: only mapped segments are accessible, division by zero traps,
and *speculative* instructions defer their faults as poison that traps
only when consumed by a non-speculative side effect (IA-64 NaT style).
Flat-model behaviour must be bit-identical to before the paged model
existed.
"""

import pytest

from repro.ir.parser import parse_module
from repro.machine.interpreter import MachineState, run_function
from repro.machine.memory import (
    HEAP_BASE,
    MEM_MODELS,
    ArithmeticFault,
    ExecutionError,
    FlatMemory,
    MemoryFault,
    PagedMemory,
    SpeculationFault,
    make_memory,
)
from repro.ir.module import STACK_BASE


GUARDED_LOAD = """
func f(r3):
    CI cr0, r3, 0
    BT done, cr0.eq
body:
    L r3, 0(r3)
done:
    RET
"""

DATA_LOAD = """
data a: size=16 init=[11, 22, 33, 44]

func f(r3):
    LA r9, a
    L r3, 0(r9)
    RET
"""


def _tag_speculative(module, fn, opcode="L"):
    """Mark every ``opcode`` instruction in ``fn`` speculative."""
    for bb in module.functions[fn].blocks:
        for instr in bb.instrs:
            if instr.opcode == opcode:
                instr.attrs["speculative"] = True


class TestMemoryObjects:
    def test_make_memory_models(self):
        assert MEM_MODELS == ("flat", "paged")
        assert isinstance(make_memory("flat"), FlatMemory)
        assert isinstance(make_memory("paged"), PagedMemory)
        with pytest.raises(ValueError):
            make_memory("segmented")

    def test_flat_memory_never_faults(self):
        mem = make_memory("flat")
        assert mem.load(0xDEADBEEF) == 0
        mem.store(0xDEADBEEF, 7)
        assert mem.load(0xDEADBEEF) == 7
        assert mem.faulting is False

    def test_paged_premaps_stack_and_heap(self):
        mem = make_memory("paged")
        assert mem.faulting is True
        assert mem.is_mapped(STACK_BASE - 4)
        assert mem.is_mapped(HEAP_BASE)
        assert not mem.is_mapped(0)
        assert not mem.is_mapped(0xDEADBEEF)

    def test_paged_unmapped_access_faults(self):
        mem = make_memory("paged")
        with pytest.raises(MemoryFault):
            mem.load(0x4)
        with pytest.raises(MemoryFault):
            mem.store(0x4, 1)
        mem.map_segment("blob", 0x1000, 8)
        mem.store(0x1000, 9)
        assert mem.load(0x1000) == 9
        with pytest.raises(MemoryFault):
            mem.load(0x1008)

    def test_fault_hierarchy(self):
        for cls in (MemoryFault, ArithmeticFault, SpeculationFault):
            assert issubclass(cls, ExecutionError)


class TestFaultingExecution:
    def test_guarded_load_ok_on_both_models(self):
        m = parse_module(GUARDED_LOAD)
        assert run_function(m, "f", [0]).value == 0
        assert run_function(m, "f", [0], mem_model="paged").value == 0

    def test_wild_load_faults_only_on_paged(self):
        m = parse_module(GUARDED_LOAD)
        # flat: address 4 is unmapped but reads 0
        assert run_function(m, "f", [4]).value == 0
        with pytest.raises(MemoryFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_data_objects_are_mapped(self):
        m = parse_module(DATA_LOAD)
        assert run_function(m, "f", [0], mem_model="paged").value == 11

    def test_out_of_object_access_faults(self):
        src = """
data a: size=8

func f(r3):
    LA r9, a
    L r3, 4096(r9)
    RET
"""
        m = parse_module(src)
        assert run_function(m, "f", [0]).value == 0
        with pytest.raises(MemoryFault):
            run_function(m, "f", [0], mem_model="paged")

    def test_wild_store_faults_only_on_paged(self):
        src = """
func f(r3):
    ST 0(r3), r3
    RET
"""
        m = parse_module(src)
        run_function(m, "f", [4])  # flat: fine
        with pytest.raises(MemoryFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_update_load_faults_on_paged(self):
        src = """
func f(r3):
    LU r4, 8(r3)
    RET
"""
        m = parse_module(src)
        run_function(m, "f", [0])
        with pytest.raises(MemoryFault):
            run_function(m, "f", [0], mem_model="paged")


class TestArithmeticFaults:
    DIV = """
func g(r3, r4):
    DIV r3, r3, r4
    RET
"""

    def test_flat_divide_by_zero_wraps_to_zero(self):
        m = parse_module(self.DIV)
        assert run_function(m, "g", [5, 0]).value == 0

    def test_paged_divide_by_zero_traps(self):
        m = parse_module(self.DIV)
        with pytest.raises(ArithmeticFault):
            run_function(m, "g", [5, 0], mem_model="paged")

    def test_paged_divide_ok_when_nonzero(self):
        m = parse_module(self.DIV)
        assert run_function(m, "g", [15, 3], mem_model="paged").value == 5

    def test_speculative_divide_by_zero_poisons_instead(self):
        src = """
func g(r3, r4):
    DIV r5, r3, r4
    LI r3, 42
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "g", opcode="DIV")
        # r5 is poisoned but dead: the run completes.
        result = run_function(m, "g", [5, 0], mem_model="paged")
        assert result.value == 42
        assert result.state.poison_events == 1


class TestPoisonDiscipline:
    def test_speculative_fault_produces_poison_not_trap(self):
        m = parse_module(GUARDED_LOAD)
        _tag_speculative(m, "f")
        # r3 != 0 takes the load; the tag only matters when it faults, and
        # r3=4 is unmapped — but the guard path *consumes* r3 at RET.
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_poison_dies_quietly_when_unconsumed(self):
        src = """
func f(r3):
    L r4, 0(r3)
    LI r3, 7
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "f")
        result = run_function(m, "f", [4], mem_model="paged")
        assert result.value == 7
        assert result.state.poison_events == 1

    def test_poison_propagates_through_alu(self):
        src = """
func f(r3):
    L r4, 0(r3)
    AI r5, r4, 1
    A r3, r5, r5
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "f")
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_clean_overwrite_clears_poison(self):
        src = """
func f(r3):
    L r4, 0(r3)
    LI r4, 9
    A r3, r4, r4
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "f")
        result = run_function(m, "f", [4], mem_model="paged")
        assert result.value == 18
        assert result.state.poison_events == 1

    def test_poisoned_store_value_traps(self):
        src = """
data a: size=8

func f(r3):
    L r4, 0(r3)
    LA r9, a
    ST 0(r9), r4
    LI r3, 0
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "f")
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_poisoned_branch_condition_traps(self):
        src = """
func f(r3):
    L r4, 0(r3)
    CI cr0, r4, 0
    BT done, cr0.eq
body:
    LI r3, 1
done:
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "f")
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_poisoned_libcall_argument_traps(self):
        src = """
func f(r3):
    L r3, 0(r3)
    CALL print_int
    LI r3, 0
    RET
"""
        m = parse_module(src)
        _tag_speculative(m, "f")
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_non_speculative_load_still_traps_directly(self):
        m = parse_module(GUARDED_LOAD)  # untagged
        with pytest.raises(MemoryFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_flat_model_ignores_poison_machinery(self):
        m = parse_module(GUARDED_LOAD)
        _tag_speculative(m, "f")
        result = run_function(m, "f", [4])
        assert result.value == 0
        assert result.state.poison_events == 0


class TestMachineStatePoison:
    def test_taint_and_clear(self):
        from repro.ir.operands import gpr

        state = MachineState(mem_model="paged")
        state.taint(gpr(4), seed=True)
        assert state.is_poisoned(gpr(4))
        assert state.poison_events == 1
        state.set(gpr(4), 5)
        assert not state.is_poisoned(gpr(4))
        # propagation-only taints do not bump the seed counter
        state.taint(gpr(5))
        assert state.poison_events == 1


SPILL_ROUND_TRIP = """
data a: size=8

func f(r3):
    L r4, 0(r3)
    AI r1, r1, -8
    ST 0(r1), r4
    LI r4, 7
    L r4, 0(r1)
    AI r1, r1, 8
    LA r9, a
    ST 0(r9), r4
    LI r3, 0
    RET
"""


def _mark_spill(module):
    """Tag the wild load speculative and the r1 pair save/restore."""
    instrs = [i for bb in module.functions["f"].blocks for i in bb.instrs]
    instrs[0].attrs["speculative"] = True
    for instr in instrs:
        if instr.opcode == "ST" and instr.base.name == "r1":
            instr.attrs["save"] = True
        if instr.opcode == "L" and instr.base is not None and instr.base.name == "r1":
            instr.attrs["restore"] = True
    return instrs


class TestSpillPoison:
    """Linkage spills preserve poison instead of trapping.

    A prolog-tailored ``ST !save`` of a callee-saved register may spill
    a value that is dead garbage — including a speculative load's
    deferred-fault token. The save must not count as "poison reached a
    store" (the token would make every call from a poisoned context
    trap); instead the slot carries the token and the matching
    ``L !restore`` re-poisons the register, like IA-64's
    st8.spill/ld8.fill pair. Found by the modulo-config fuzz campaign
    (corpus case spill-poison-prolog-save).
    """

    def test_save_of_poison_does_not_trap_and_restore_repoisons(self):
        m = parse_module(SPILL_ROUND_TRIP)
        _mark_spill(m)
        # The token survives the spill round trip, so the *normal*
        # store of the restored register still convicts.
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_spilled_poison_dies_quietly_when_unconsumed(self):
        m = parse_module(SPILL_ROUND_TRIP)
        instrs = _mark_spill(m)
        # Overwrite the restored register before the data store: the
        # re-poisoned value is never consumed.
        for instr in instrs:
            if instr.opcode == "ST" and instr.base.name == "r9":
                instr.attrs["save"] = True  # neutralize the consumer too
        result = run_function(m, "f", [4], mem_model="paged")
        assert result.value == 0

    def test_plain_store_clears_slot_poison(self):
        src = """
data a: size=8

func f(r3):
    L r4, 0(r3)
    AI r1, r1, -8
    ST 0(r1), r4
    LI r5, 42
    ST 0(r1), r5
    L r4, 0(r1)
    AI r1, r1, 8
    LA r9, a
    ST 0(r9), r4
    LR r3, r4
    RET
"""
        m = parse_module(src)
        instrs = [i for bb in m.functions["f"].blocks for i in bb.instrs]
        instrs[0].attrs["speculative"] = True
        first_st = next(i for i in instrs if i.opcode == "ST")
        first_st.attrs["save"] = True
        restore = next(i for i in instrs if i.opcode == "L" and i.base.name == "r1")
        restore.attrs["restore"] = True
        # The clean ST overwrote the slot, so the restore reads 42 with
        # no poison and the data store is legal.
        result = run_function(m, "f", [4], mem_model="paged")
        assert result.value == 42

    def test_save_with_poisoned_base_still_traps(self):
        src = """
func f(r3):
    L r4, 0(r3)
    ST 0(r4), r5
    LI r3, 0
    RET
"""
        m = parse_module(src)
        instrs = [i for bb in m.functions["f"].blocks for i in bb.instrs]
        instrs[0].attrs["speculative"] = True
        instrs[1].attrs["save"] = True
        # A save through a poisoned *address* is unknowable — spill
        # semantics only exempt the stored value.
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")

    def test_normal_store_of_poison_still_traps(self):
        m = parse_module(SPILL_ROUND_TRIP)
        instrs = _mark_spill(m)
        for instr in instrs:
            instr.attrs.pop("restore", None)
        # Without the restore tag the slot load reads raw 0: clean. But
        # removing the save tag instead must trap at the spill itself.
        for instr in instrs:
            if instr.opcode == "ST" and instr.base.name == "r1":
                instr.attrs.pop("save")
        with pytest.raises(SpeculationFault):
            run_function(m, "f", [4], mem_model="paged")
