"""ResilienceReport structure and serialisation."""

import json

from repro.robustness import PassFailure, PassRecord, ResilienceReport


def sample_report():
    report = ResilienceReport(policy="rollback")
    report.add(
        PassRecord(0, "straighten", "ok", changed=True, seconds=0.001,
                   verify="ok", diff="match")
    )
    failure = PassFailure(1, "dce", "exception", "ValueError: boom")
    report.add(
        PassRecord(1, "dce", "rolled-back", changed=False, seconds=0.002,
                   verify="skipped", diff="skipped", failure=failure)
    )
    report.add(
        PassRecord(2, "bb-expansion", "retried", changed=True, seconds=0.003,
                   verify="ok", diff="inconclusive")
    )
    return report


class TestReport:
    def test_counters(self):
        report = sample_report()
        assert report.rollbacks == 1
        assert report.retries == 1
        assert report.failed_passes() == ["dce"]
        assert len(report.failures) == 1
        assert report.failures[0].kind == "exception"

    def test_summary_names_failing_pass(self):
        text = sample_report().summary()
        assert "policy=rollback" in text
        assert "rolled-back=1" in text
        assert "dce" in text

    def test_json_shape(self):
        data = json.loads(sample_report().to_json())
        assert data["policy"] == "rollback"
        assert data["passes"] == 3
        assert data["rollbacks"] == 1
        assert data["retries"] == 1
        assert data["failed_passes"] == ["dce"]
        assert [r["pass"] for r in data["records"]] == [
            "straighten", "dce", "bb-expansion"
        ]
        failing = data["records"][1]
        assert failing["failure"] == {
            "index": 1,
            "pass": "dce",
            "kind": "exception",
            "detail": "ValueError: boom",
            "retried": False,
        }

    def test_empty_report(self):
        report = ResilienceReport(policy="strict")
        assert report.rollbacks == 0
        assert report.failed_passes() == []
        assert json.loads(report.to_json())["records"] == []
