"""GuardedPassManager: containment of every injected failure class.

The acceptance contract: for each failure class (pass exception,
verifier-invalid IR, semantic divergence, budget overrun), the
``rollback`` policy completes the compile, the final module verifies,
seeded interpreter runs match the pre-pipeline module, and the JSON
report names the exact failing pass — while ``strict`` raises as today.
"""

import json

import pytest

from repro.ir import parse_module, verify_module
from repro.machine.interpreter import run_function
from repro.pipeline import compile_module
from repro.robustness import (
    DifferentialChecker,
    FaultPlan,
    FaultSpec,
    GuardedPassManager,
    InjectedFault,
    PassBudgetExceeded,
    SemanticDivergenceError,
)
from repro.transforms import DeadCodeElimination, Pass, Straighten

SRC = """
data a: size=16 init=[1, 2, 3, 4]

func main(r3):
    LA r4, a
    LI r3, 0
    LI r5, 4
    MTCTR r5
    AI r4, r4, -4
loop:
    LU r6, 4(r4)
    A r3, r3, r6
    BCT loop
done:
    CALL print_int, 1
    RET
"""

ARGSETS = [[0], [5], [-3]]

#: fault kind -> the failure class the guard must classify it as.
EXPECTED_FAILURE = {
    "raise": "exception",
    "corrupt-ir": "verifier",
    "skew": "divergence",
    "stall": "stall",
}


def reference(module):
    return [run_function(module, "main", args, max_steps=100_000) for args in ARGSETS]


def assert_matches_reference(module, refs):
    for args, ref in zip(ARGSETS, refs):
        after = run_function(module, "main", args, max_steps=100_000)
        assert after.value == ref.value, f"main{tuple(args)} diverged"
        assert after.output == ref.output, f"main{tuple(args)} output diverged"


class TestRollbackContainment:
    @pytest.mark.parametrize("kind", sorted(EXPECTED_FAILURE))
    def test_each_failure_class_is_contained(self, kind):
        pristine = parse_module(SRC)
        refs = reference(pristine)
        plan = FaultPlan([FaultSpec(pass_name="dce", kind=kind, seconds=1.0)])
        result = compile_module(
            parse_module(SRC),
            "vliw",
            resilience="rollback",
            fault_plan=plan,
            pass_budget_seconds=0.3 if kind == "stall" else None,
        )
        # The compile completed and the surviving module is well-formed.
        verify_module(result.module)
        # Semantics match the pre-pipeline module on seeded inputs.
        assert_matches_reference(result.module, refs)
        # The report names the exact failing pass and failure class.
        report = result.resilience
        assert report is not None
        assert report.rollbacks == 1
        assert report.failed_passes() == ["dce"]
        assert [f.kind for f in report.failures] == [EXPECTED_FAILURE[kind]]

    def test_rolled_back_pass_not_counted_as_changed(self):
        plan = FaultPlan([FaultSpec(pass_name="straighten", kind="raise", times=0)])
        result = compile_module(
            parse_module(SRC), "vliw", resilience="rollback", fault_plan=plan
        )
        # Every straighten position failed, so it can never report a change.
        assert result.pass_changes.get("straighten", False) is False
        assert result.resilience.rollbacks == 2  # straighten appears twice

    def test_report_json_round_trips(self):
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="raise")])
        result = compile_module(
            parse_module(SRC), "vliw", resilience="rollback", fault_plan=plan
        )
        data = json.loads(result.resilience.to_json())
        assert data["policy"] == "rollback"
        assert data["rollbacks"] == 1
        assert data["failed_passes"] == ["dce"]
        rolled = [r for r in data["records"] if r["outcome"] == "rolled-back"]
        assert len(rolled) == 1
        assert rolled[0]["pass"] == "dce"
        assert rolled[0]["failure"]["kind"] == "exception"
        oks = [r for r in data["records"] if r["outcome"] == "ok"]
        assert all(r["failure"] is None for r in oks)
        assert "rolled-back=1 (dce)" in result.resilience.summary()


class TestStrictPolicy:
    def test_injected_exception_propagates(self):
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="raise")])
        with pytest.raises(InjectedFault):
            compile_module(
                parse_module(SRC), "vliw", resilience="strict", fault_plan=plan
            )

    def test_verifier_failure_raises_like_plain_manager(self):
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="corrupt-ir")])
        with pytest.raises(RuntimeError, match="IR verification failed after pass"):
            compile_module(
                parse_module(SRC), "vliw", resilience="strict", fault_plan=plan
            )

    def test_divergence_raises_typed_error(self):
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="skew")])
        with pytest.raises(SemanticDivergenceError, match="dce"):
            compile_module(
                parse_module(SRC), "vliw", resilience="strict", fault_plan=plan
            )

    def test_budget_overrun_raises_typed_error(self):
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="stall", seconds=0.6)])
        with pytest.raises(PassBudgetExceeded, match="dce"):
            compile_module(
                parse_module(SRC),
                "vliw",
                resilience="strict",
                fault_plan=plan,
                pass_budget_seconds=0.2,
            )

    def test_default_path_unaffected_by_guard(self):
        # No resilience: the plain manager runs and injected faults are fatal.
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="raise")])
        with pytest.raises(InjectedFault):
            compile_module(parse_module(SRC), "vliw", fault_plan=plan)


class TestRetryPolicy:
    def test_transient_fault_heals_on_retry(self):
        pristine = parse_module(SRC)
        refs = reference(pristine)
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="raise", times=1)])
        result = compile_module(
            parse_module(SRC), "vliw", resilience="retry", fault_plan=plan
        )
        report = result.resilience
        assert report.retries == 1
        assert report.rollbacks == 0
        retried = [r for r in report.records if r.outcome == "retried"]
        assert retried and retried[0].name == "dce"
        verify_module(result.module)
        assert_matches_reference(result.module, refs)

    def test_persistent_fault_still_rolls_back(self):
        pristine = parse_module(SRC)
        refs = reference(pristine)
        plan = FaultPlan([FaultSpec(pass_name="dce", kind="raise", times=0)])
        result = compile_module(
            parse_module(SRC), "vliw", resilience="retry", fault_plan=plan
        )
        report = result.resilience
        assert report.rollbacks >= 1
        assert all(f.retried for f in report.failures)
        verify_module(result.module)
        assert_matches_reference(result.module, refs)


class _Bomb(Pass):
    name = "bomb"

    def run_on_function(self, fn, ctx):
        raise ValueError("boom")


class TestGuardedManagerDirect:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            GuardedPassManager([], policy="shrug")

    def test_rollback_restores_module_identity(self):
        module = parse_module(SRC)
        before = run_function(module, "main", [0], max_steps=100_000)
        manager = GuardedPassManager([_Bomb()], policy="rollback")
        manager.run(module)
        after = run_function(module, "main", [0], max_steps=100_000)
        assert after.value == before.value
        assert manager.report.rollbacks == 1

    def test_stats_rolled_back_with_module(self):
        class _Bumper(Pass):
            name = "bumper"

            def run_on_function(self, fn, ctx):
                ctx.bump("bumper.calls")
                fn.blocks[0].terminator.target = "nowhere"
                return True

        module = parse_module(SRC)
        manager = GuardedPassManager([_Bumper()], policy="rollback")
        ctx = manager.run(module)
        # The failed pass's counter mutations were rolled back too.
        assert "bumper.calls" not in ctx.stats

    def test_checker_verdicts_recorded(self):
        module = parse_module(SRC)
        manager = GuardedPassManager(
            [DeadCodeElimination(), Straighten()],
            policy="rollback",
            checker=DifferentialChecker(),
        )
        manager.run(module)
        assert [r.outcome for r in manager.report.records] == ["ok", "ok"]
        for record in manager.report.records:
            assert record.diff in ("match", "skipped")
