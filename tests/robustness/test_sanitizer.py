"""Speculation-containment sanitizer: classification and guard wiring.

The acceptance contract: a pass that hoists a load past its guard
without tagging safety produces a module the flat-model diff checker
cannot distinguish from the original (unmapped flat loads read 0), but
the paged-model sanitizer classifies the entry as a *containment
violation*, the guard records it as a ``containment`` failure, the
``rollback`` policy restores the pre-pass module, and the pipeline still
completes.
"""

import json

import pytest

from repro.ir import parse_module
from repro.machine.interpreter import run_function
from repro.pipeline import compile_module
from repro.robustness import (
    CLASSIFICATIONS,
    ContainmentViolationError,
    DifferentialChecker,
    FaultPlan,
    FaultSpec,
    GuardedPassManager,
    SpeculationSanitizer,
)
from repro.robustness.faults import _speculate_unsafely
from repro.transforms import DeadCodeElimination, Straighten

#: The guarded-load shape every test here revolves around: with r3 == 0
#: the load is skipped; its destination is the return value, so a
#: mis-speculated hoist is consumed at RET.
GUARDED = """
func f(r3):
    CI cr0, r3, 0
    BT done, cr0.eq
body:
    L r3, 0(r3)
done:
    RET
"""

#: Same guard, but the loaded value is dead on the skip path: a hoisted
#: speculative load that faults produces poison nothing ever consumes.
DEAD_DEST = """
func f(r3):
    CI cr0, r3, 0
    BT done, cr0.eq
body:
    L r4, 0(r3)
done:
    LI r3, 7
    RET
"""


def hoisted(src: str):
    """Parse ``src`` and unsafely hoist its guarded load (tagged)."""
    module = parse_module(src)
    assert _speculate_unsafely(module)
    return module


class TestClassifications:
    def test_clean_when_nothing_changed(self):
        m = parse_module(GUARDED)
        result = SpeculationSanitizer(entries=[("f", [[0]])]).run(m, m)
        assert result.ok
        assert [f.classification for f in result.findings] == ["clean"]

    def test_benign_when_baseline_faults_too(self):
        m = parse_module(GUARDED)
        result = SpeculationSanitizer(entries=[("f", [[4]])]).run(m, hoisted(GUARDED))
        assert result.ok  # program bug, not an optimizer bug
        assert [f.classification for f in result.findings] == ["benign"]
        assert result.findings[0].baseline == "MemoryFault"

    def test_violation_when_poison_is_consumed(self):
        m = parse_module(GUARDED)
        result = SpeculationSanitizer(entries=[("f", [[0]])]).run(m, hoisted(GUARDED))
        assert not result.ok
        assert not result
        finding = result.violations[0]
        assert finding.optimized == "SpeculationFault"
        assert "optimized-only fault" in finding.detail

    def test_masked_when_poison_dies_unconsumed(self):
        m = parse_module(DEAD_DEST)
        result = SpeculationSanitizer(entries=[("f", [[0]])]).run(m, hoisted(DEAD_DEST))
        assert result.ok  # containment worked exactly as designed
        assert [f.classification for f in result.findings] == ["masked"]

    def test_inconclusive_on_step_budget(self):
        src = """
func f(r3):
    LI r4, 1000000
    MTCTR r4
loop:
    BCT loop
done:
    RET
"""
        m = parse_module(src)
        sanitizer = SpeculationSanitizer(entries=[("f", [[0]])], max_steps=10)
        result = sanitizer.run(m, m)
        assert [f.classification for f in result.findings] == ["inconclusive"]
        assert result.ok

    def test_value_divergence_is_a_violation(self):
        # Not a fault, but an optimized-only behaviour change observed
        # under the containment model: still a violation.
        before = parse_module("func f(r3):\n    LI r3, 7\n    RET\n")
        after = parse_module("func f(r3):\n    LI r3, 8\n    RET\n")
        result = SpeculationSanitizer(entries=[("f", [[0]])]).run(before, after)
        assert not result.ok
        assert "diverged" in result.violations[0].detail

    def test_derived_entries_cover_every_function(self):
        m = parse_module(GUARDED)
        sanitizer = SpeculationSanitizer(seed=7, argsets_per_function=3)
        result = sanitizer.run(m, m)
        assert result.seed == 7
        assert all(f.fn == "f" for f in result.findings)
        assert len(result.findings) >= 2


class TestResultApi:
    def test_counts_and_summary(self):
        m = parse_module(GUARDED)
        result = SpeculationSanitizer(
            entries=[("f", [[0], [4]])]
        ).run(m, hoisted(GUARDED))
        counts = result.counts()
        assert set(counts) == set(CLASSIFICATIONS)
        assert counts["violation"] == 1
        assert counts["benign"] == 1
        assert "violation=1" in result.summary()
        assert "first-violation" in result.summary()

    def test_json_round_trip(self):
        m = parse_module(GUARDED)
        result = SpeculationSanitizer(entries=[("f", [[0]])]).run(m, hoisted(GUARDED))
        payload = json.loads(result.to_json())
        assert payload["ok"] is False
        assert payload["entries"] == 1
        assert payload["findings"][0]["classification"] == "violation"
        assert payload["findings"][0]["args"] == [0]


class TestGuardIntegration:
    def _plan(self):
        return FaultPlan([FaultSpec(pass_name="dce", kind="speculate")])

    def _passes(self):
        return self._plan().apply([Straighten(), DeadCodeElimination()])

    def test_flat_checker_is_blind_to_the_hoist(self):
        # The premise of the whole sanitizer: the flat model cannot see
        # the unsafe hoist because unmapped flat loads read 0.
        module = parse_module(GUARDED)
        checker = DifferentialChecker()
        checker.prepare(module)
        assert _speculate_unsafely(module)
        assert checker.check(module).kind == "match"

    def test_violation_rolls_back_and_pipeline_completes(self):
        module = parse_module(GUARDED)
        manager = GuardedPassManager(
            self._passes(),
            policy="rollback",
            checker=DifferentialChecker(),
            sanitizer=SpeculationSanitizer(),
        )
        manager.run(module)
        report = manager.report
        assert report.containment_violations == 1
        assert report.failures[0].kind == "containment"
        assert report.failures[0].pass_name == "dce"
        # rollback restored the guard: paged execution is clean again
        assert run_function(module, "f", [0], mem_model="paged").value == 0
        # every pipeline position still ran
        assert len(report.records) == 2
        bad = [r for r in report.records if r.name == "dce"][0]
        assert bad.outcome == "rolled-back"
        assert bad.sanitize == "violation"

    def test_strict_policy_raises_typed_error(self):
        module = parse_module(GUARDED)
        manager = GuardedPassManager(
            self._passes(),
            policy="strict",
            checker=DifferentialChecker(),
            sanitizer=SpeculationSanitizer(),
        )
        with pytest.raises(ContainmentViolationError, match="dce"):
            manager.run(module)

    def test_masked_hoist_is_kept_and_recorded(self):
        # Inject on straighten, before DCE gets a chance to delete the
        # dead-destination load: the sanitizer sees the contained poison.
        plan = FaultPlan([FaultSpec(pass_name="straighten", kind="speculate")])
        module = parse_module(DEAD_DEST)
        manager = GuardedPassManager(
            plan.apply([Straighten(), DeadCodeElimination()]),
            policy="rollback",
            checker=DifferentialChecker(),
            sanitizer=SpeculationSanitizer(),
        )
        manager.run(module)
        assert manager.report.containment_violations == 0
        rec = [r for r in manager.report.records if r.name == "straighten"][0]
        assert rec.outcome == "ok"
        assert rec.sanitize == "masked"

    def test_diff_seed_recorded_in_report(self):
        module = parse_module(GUARDED)
        manager = GuardedPassManager(
            [Straighten()],
            policy="rollback",
            checker=DifferentialChecker(seed=41),
            sanitizer=SpeculationSanitizer(seed=41),
        )
        manager.run(module)
        payload = json.loads(manager.report.to_json())
        assert payload["diff_seed"] == 41
        assert "containment_violations" in payload
        assert payload["records"][0]["sanitize"] in ("ok", "masked", "skipped")


class TestPipelineWiring:
    def test_compile_module_sanitize_flag(self):
        module = parse_module(GUARDED)
        result = compile_module(
            module,
            level="base",
            resilience="rollback",
            fault_plan=FaultPlan([FaultSpec(pass_name="dce", kind="speculate")]),
            sanitize=True,
            diff_seed=13,
        )
        report = result.resilience
        assert report is not None
        assert report.diff_seed == 13
        assert report.containment_violations == 1
        # the compiled module is still semantically the guarded original
        assert run_function(result.module, "f", [0], mem_model="paged").value == 0

    def test_scheduler_forced_past_guard_is_contained(self):
        # The acceptance scenario: the (sabotaged) scheduler hoists a load
        # past the guard that makes it safe. The flat diff checker stays
        # blind, the sanitizer convicts, rollback restores the pre-pass
        # module, and the full VLIW pipeline still completes.
        module = parse_module(GUARDED)
        result = compile_module(
            module,
            level="vliw",
            resilience="rollback",
            fault_plan=FaultPlan(
                [FaultSpec(pass_name="vliw-scheduling", kind="speculate")]
            ),
            sanitize=True,
        )
        report = result.resilience
        assert report.containment_violations == 1
        bad = [f for f in report.failures if f.kind == "containment"][0]
        assert bad.pass_name == "vliw-scheduling"
        # every pipeline position ran to completion despite the rollback
        assert [r.index for r in report.records] == list(range(len(report.records)))
        assert len(report.records) > 5
        # the shipped module is containment-clean again
        assert run_function(result.module, "f", [0], mem_model="paged").value == 0

    def test_sanitize_off_by_default(self):
        module = parse_module(GUARDED)
        result = compile_module(
            module,
            level="base",
            resilience="rollback",
            fault_plan=FaultPlan([FaultSpec(pass_name="dce", kind="speculate")]),
        )
        # without the sanitizer the unsafe hoist sails through: the flat
        # diff checker cannot see it
        assert result.resilience.containment_violations == 0
        with pytest.raises(Exception):
            run_function(result.module, "f", [0], mem_model="paged")
