"""The fault-injection harness itself: plans, wrapping, determinism."""

import time

import pytest

from repro.ir import VerificationError, parse_module, verify_module
from repro.machine.interpreter import run_function
from repro.robustness import (
    DANGLING_LABEL,
    FaultPlan,
    FaultSpec,
    FaultyPass,
    InjectedFault,
    load_fault_plan,
)
from repro.transforms import DeadCodeElimination, Straighten
from repro.transforms.pass_manager import PassContext

SRC = """
func f(r3):
    CI cr0, r3, 0
    BT out, cr0.lt
    AI r3, r3, 1
out:
    RET
"""


def fresh():
    return parse_module(SRC)


class TestPlanParsing:
    def test_compact_form(self):
        plan = FaultPlan.parse("dce:raise,straighten:stall:0.25,dce:skew:3")
        assert [s.pass_name for s in plan.faults] == ["dce", "straighten", "dce"]
        assert plan.faults[0].kind == "raise" and plan.faults[0].times == 1
        assert plan.faults[1].kind == "stall" and plan.faults[1].seconds == 0.25
        assert plan.faults[2].kind == "skew" and plan.faults[2].times == 3

    def test_bad_compact_form_rejected(self):
        with pytest.raises(ValueError, match="pass:kind"):
            FaultPlan.parse("just-a-pass-name")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(pass_name="dce", kind="lightning")

    def test_json_round_trip(self):
        plan = FaultPlan(
            [FaultSpec("dce", "raise", times=2), FaultSpec("straighten", "stall", seconds=0.1)]
        )
        again = FaultPlan.from_json(plan.to_json())
        assert [s.to_dict() for s in again.faults] == [s.to_dict() for s in plan.faults]

    def test_load_fault_plan_from_file_and_inline(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan([FaultSpec("dce", "skew")]).to_json())
        from_file = load_fault_plan(str(path))
        assert from_file.faults[0].kind == "skew"
        inline = load_fault_plan("dce:raise")
        assert inline.faults[0].kind == "raise"


class TestApply:
    def test_wraps_every_matching_occurrence(self):
        plan = FaultPlan([FaultSpec("dce", "raise")])
        passes = plan.apply([DeadCodeElimination(), Straighten(), DeadCodeElimination()])
        assert isinstance(passes[0], FaultyPass)
        assert not isinstance(passes[1], FaultyPass)
        assert isinstance(passes[2], FaultyPass)
        assert passes[0].name == "dce"  # name preserved for reports/timings

    def test_unknown_pass_name_rejected(self):
        plan = FaultPlan([FaultSpec("not-a-pass", "raise")])
        with pytest.raises(ValueError, match="not-a-pass"):
            plan.apply([DeadCodeElimination()])

    def test_times_budget_shared_across_occurrences(self):
        spec = FaultSpec("dce", "raise", times=1)
        passes = FaultPlan([spec]).apply([DeadCodeElimination(), DeadCodeElimination()])
        module = fresh()
        ctx = PassContext(module)
        with pytest.raises(InjectedFault):
            passes[0].run_on_module(module, ctx)
        # The single-shot budget is consumed: the second occurrence is clean.
        passes[1].run_on_module(module, ctx)

    def test_reset_rearms_the_plan(self):
        spec = FaultSpec("dce", "raise", times=1)
        plan = FaultPlan([spec])
        wrapped = plan.apply([DeadCodeElimination()])[0]
        module = fresh()
        ctx = PassContext(module)
        with pytest.raises(InjectedFault):
            wrapped.run_on_module(module, ctx)
        wrapped.run_on_module(module, ctx)  # disarmed
        plan.reset()
        with pytest.raises(InjectedFault):
            wrapped.run_on_module(module, ctx)


class TestFaultKinds:
    def wrap(self, kind, **kw):
        spec = FaultSpec("dce", kind, **kw)
        return FaultPlan([spec]).apply([DeadCodeElimination()])[0]

    def test_corrupt_ir_is_verifier_invalid(self):
        module = fresh()
        self.wrap("corrupt-ir").run_on_module(module, PassContext(module))
        with pytest.raises(VerificationError, match=DANGLING_LABEL):
            verify_module(module)

    def test_skew_keeps_ir_valid_but_changes_result(self):
        module = fresh()
        before = run_function(module, "f", [4]).value
        self.wrap("skew").run_on_module(module, PassContext(module))
        verify_module(module)  # still structurally fine
        after = run_function(module, "f", [4]).value
        assert after != before

    def test_stall_sleeps_past_duration(self):
        module = fresh()
        start = time.perf_counter()
        self.wrap("stall", seconds=0.05).run_on_module(module, PassContext(module))
        assert time.perf_counter() - start >= 0.05
