"""``pass_budget_seconds`` deadline enforcement in the guarded pipeline.

The contract under test: a pass that blows through its wall-clock
budget is *discarded and reported*, never allowed to hang the compile.
``rollback`` restores the snapshot and records a ``stall``-kind
failure naming the pass; ``strict`` raises :class:`PassBudgetExceeded`;
``retry`` re-runs the pass once and keeps the result when the retry
lands under budget.
"""

import time

import pytest

from repro.ir import parse_module, verify_module
from repro.machine.interpreter import run_function
from repro.pipeline import compile_module
from repro.robustness import FaultPlan, FaultSpec, PassBudgetExceeded

SRC = """
func main(r3):
    AI r3, r3, 7
    AI r3, r3, -2
    RET
"""

STALL = 0.4     # injected sleep inside the faulted pass
BUDGET = 0.1    # wall-clock allowance per pass


def _stall_plan(times: int = 0) -> FaultPlan:
    return FaultPlan(
        [FaultSpec(pass_name="dce", kind="stall", seconds=STALL, times=times)]
    )


class TestBudgetEnforcement:
    def test_rollback_records_stall_not_hang(self):
        t0 = time.monotonic()
        result = compile_module(
            parse_module(SRC),
            "vliw",
            resilience="rollback",
            fault_plan=_stall_plan(times=1),
            pass_budget_seconds=BUDGET,
        )
        elapsed = time.monotonic() - t0
        # Bounded: one cooperative stall, nowhere near a hang.
        assert elapsed < 10 * STALL
        verify_module(result.module)
        assert run_function(result.module, "main", [0]).value == 5
        report = result.resilience
        assert report.rollbacks == 1
        assert report.failed_passes() == ["dce"]
        failure = report.failures[0]
        assert failure.kind == "stall"
        assert "budget" in failure.detail

    def test_strict_raises_pass_budget_exceeded(self):
        with pytest.raises(PassBudgetExceeded, match="dce"):
            compile_module(
                parse_module(SRC),
                "vliw",
                resilience="strict",
                fault_plan=_stall_plan(),
                pass_budget_seconds=BUDGET,
            )

    def test_retry_heals_a_one_shot_stall(self):
        # The stall fires once; the retry runs clean and under budget, so
        # the compile succeeds with the stall recorded but not fatal.
        result = compile_module(
            parse_module(SRC),
            "vliw",
            resilience="retry",
            fault_plan=_stall_plan(times=1),
            pass_budget_seconds=BUDGET,
        )
        verify_module(result.module)
        assert run_function(result.module, "main", [0]).value == 5
        report = result.resilience
        retried = [r for r in report.records if r.outcome == "retried"]
        assert [r.name for r in retried] == ["dce"]
        # The healed stall is not a surviving failure.
        assert report.failures == []
        assert report.failed_passes() == []

    def test_under_budget_pass_is_not_penalised(self):
        result = compile_module(
            parse_module(SRC),
            "vliw",
            resilience="rollback",
            pass_budget_seconds=5.0,
        )
        assert result.resilience.rollbacks == 0
        assert result.resilience.failures == []

    def test_no_budget_means_no_stall_failures(self):
        # Without a budget the stalled pass is merely slow, not a failure.
        result = compile_module(
            parse_module(SRC),
            "vliw",
            resilience="rollback",
            fault_plan=FaultPlan(
                [FaultSpec(pass_name="dce", kind="stall", seconds=0.05)]
            ),
        )
        assert result.resilience.failures == []
