"""Fuzz smoke: random programs through the full pipeline, both models.

Property-based end-to-end confidence check: ~50 structured random
programs (arithmetic, memory traffic, diamonds, counted loops) are
compiled at the full VLIW level under the guarded pipeline with the
differential checker enabled, on the flat *and* the paged memory model,
plus a paged-model sanitizer sweep. Nothing may escape containment: no
uncontained pass exception, no semantic divergence, no
speculation-containment violation.

Runs as its own CI job (see ``.github/workflows/ci.yml``); locally it is
just part of the suite (a few seconds).
"""

import pytest

from repro.machine.interpreter import run_function
from repro.machine.memory import ExecutionError, ExecutionLimit
from repro.pipeline import compile_module
from repro.robustness import SpeculationSanitizer

from support import random_program, standard_argsets

SEEDS = range(50)

MAX_STEPS = 200_000


def _observe(module, args, mem_model):
    """(kind, value, output) capsule; faults collapse to their class name."""
    try:
        result = run_function(
            module, "f", list(args), max_steps=MAX_STEPS, mem_model=mem_model
        )
    except ExecutionLimit:
        return ("limit", 0, [])
    except ExecutionError as exc:
        return (type(exc).__name__, 0, [])
    return ("ok", result.value, list(result.output))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_program_flat_and_paged(seed):
    module = random_program(seed, size=12)
    compiled = compile_module(
        module,
        level="vliw",
        resilience="rollback",
        diff_seed=seed,
    )
    report = compiled.resilience
    # the guarded pipeline must contain everything it rolled back
    assert report is not None
    assert report.diff_seed == seed
    for failure in report.failures:
        assert failure.kind in ("exception", "verifier", "divergence", "stall")

    for args in standard_argsets():
        for mem_model in ("flat", "paged"):
            base = _observe(module, args, mem_model)
            after = _observe(compiled.module, args, mem_model)
            if "limit" in (base[0], after[0]):
                continue  # unrolling legitimately changes step counts
            assert after == base, (
                f"seed {seed} f{tuple(args)} [{mem_model}]: "
                f"{after} != {base}"
            )


@pytest.mark.parametrize("seed", range(0, 50, 10))
def test_random_program_sanitizer_sweep(seed):
    """A denser paged-model pass over a sample of the fuzz corpus."""
    module = random_program(seed, size=12)
    compiled = compile_module(module, level="vliw")
    result = SpeculationSanitizer(
        entries=[("f", standard_argsets())], max_steps=MAX_STEPS
    ).run(module, compiled.module)
    assert result.ok, f"seed {seed}: {result.summary()}"
