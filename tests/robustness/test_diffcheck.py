"""The differential semantic checker and its failure-mode contracts."""

from repro.ir import parse_module
from repro.machine.interpreter import (
    ExecutionError,
    ExecutionLimit,
    run_function,
)
from repro.robustness import DifferentialChecker, observe

SRC = """
data a: size=16 init=[1, 2, 3, 4]

func main(r3):
    LA r4, a
    LI r3, 0
    LI r5, 4
    MTCTR r5
    AI r4, r4, -4
loop:
    LU r6, 4(r4)
    A r3, r3, r6
    BCT loop
done:
    RET
"""

# Identical except the loop runs two million iterations: far past the
# checker's step budget, but semantically still a terminating program.
SLOW_SRC = SRC.replace("LI r5, 4", "LI r5, 2000000")


class TestVerdicts:
    def test_identical_module_matches(self):
        module = parse_module(SRC)
        checker = DifferentialChecker()
        checker.prepare(module)
        verdict = checker.check(module.clone())
        assert verdict.kind == "match"
        assert verdict.compared > 0

    def test_value_divergence_is_mismatch(self):
        module = parse_module(SRC)
        checker = DifferentialChecker()
        checker.prepare(module)
        skewed = parse_module(SRC.replace("LI r3, 0", "LI r3, 1"))
        verdict = checker.check(skewed)
        assert verdict.kind == "mismatch"
        assert "value" in verdict.detail

    def test_memory_divergence_is_mismatch(self):
        src = "data a: size=8\nfunc f(r3):\n    LA r4, a\n    ST 0(r4), r3\n    RET"
        module = parse_module(src)
        checker = DifferentialChecker(entries=[("f", [[5]])])
        checker.prepare(module)
        stomped = parse_module(src.replace("ST 0(r4)", "ST 4(r4)"))
        verdict = checker.check(stomped)
        assert verdict.kind == "mismatch"
        assert "memory" in verdict.detail

    def test_structural_break_is_mismatch(self):
        module = parse_module(SRC)
        checker = DifferentialChecker()
        checker.prepare(module)
        broken = parse_module(SRC)
        broken.functions["main"].blocks[1].terminator.target = "nowhere"
        verdict = checker.check(broken)
        assert verdict.kind == "mismatch"
        assert "fails" in verdict.detail


class TestExecutionLimitContract:
    """Budget exhaustion is "inconclusive, keep" — never "mismatch"."""

    def test_after_side_limit_is_inconclusive_not_mismatch(self):
        module = parse_module(SRC)
        checker = DifferentialChecker(
            entries=[("main", [[0]])], max_steps=1_000
        )
        checker.prepare(module)  # 4 iterations: runs fine in 1000 steps
        verdict = checker.check(parse_module(SLOW_SRC))
        assert verdict.kind == "inconclusive"
        assert verdict.inconclusive == 1
        assert bool(verdict)  # inconclusive must read as "keep"

    def test_baseline_limit_skips_entry(self):
        checker = DifferentialChecker(entries=[("main", [[0]])], max_steps=1_000)
        checker.prepare(parse_module(SLOW_SRC))
        verdict = checker.check(parse_module(SLOW_SRC))
        assert verdict.kind == "inconclusive"
        assert "runnable" in verdict.detail

    def test_observe_classifies_limit_vs_error(self):
        limit = observe(parse_module(SLOW_SRC), "main", [0], max_steps=1_000)
        assert limit.kind == "limit"
        missing = observe(parse_module(SRC), "no_such_fn", [0], max_steps=1_000)
        assert missing.kind == "error"

    def test_interpreter_contracts_are_distinct(self):
        # ExecutionLimit specialises ExecutionError; the checker relies on
        # catching it first, so pin the hierarchy here too.
        assert issubclass(ExecutionLimit, ExecutionError)
        assert not issubclass(ExecutionError, ExecutionLimit)


class TestEntryDerivation:
    def test_derived_entries_are_deterministic(self):
        module = parse_module(SRC)
        a = DifferentialChecker(seed=7)
        b = DifferentialChecker(seed=7)
        a.prepare(module)
        b.prepare(module.clone())
        assert a.entries == b.entries

    def test_seed_changes_entries(self):
        module = parse_module(SRC)
        a = DifferentialChecker(seed=1, argsets_per_function=5)
        b = DifferentialChecker(seed=2, argsets_per_function=5)
        a.prepare(module)
        b.prepare(module.clone())
        assert a.entries != b.entries

    def test_zero_vector_always_included(self):
        module = parse_module(SRC)
        checker = DifferentialChecker()
        checker.prepare(module)
        assert ("main", (0,)) in checker.entries

    def test_explicit_entries_respected(self):
        module = parse_module(SRC)
        checker = DifferentialChecker(entries=[("main", [[1], [2]])])
        checker.prepare(module)
        assert checker.entries == [("main", (1,)), ("main", (2,))]

    def test_unprepared_checker_is_inconclusive(self):
        verdict = DifferentialChecker().check(parse_module(SRC))
        assert verdict.kind == "inconclusive"
