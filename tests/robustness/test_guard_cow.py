"""Rollback is exhaustive under both snapshot strategies.

Regression: the old ``GuardedPassManager._restore`` copied back only
``functions`` and ``data``, so any *other* module-level state a faulty
pass mutated survived the rollback. Both restore paths — per-function
copy-on-write and full-clone ``Module.restore_from`` — must undo
everything: invented attributes, renames, deleted and added functions.
"""

import pytest

from repro.ir import format_module, parse_module
from repro.robustness import GuardedPassManager
from repro.transforms import Pass, Straighten

SRC = """
data tab: size=8 init=[1, 2]

func f(r3):
    AI r3, r3, 1
    RET

func g(r3):
    AI r3, r3, 2
    RET
"""


class _FieldMutator(Pass):
    """Mutates module-level state, then dies."""

    name = "field-mutator"

    def run_on_function(self, fn, ctx):
        module = ctx.module
        module.name = "evil"
        module.__dict__["invented_field"] = {"oops": True}
        module.data["tab"].init[0] = 99
        fn.blocks[0].instrs[0].imm = 1234
        raise RuntimeError("die mid-mutation")


class _FunctionDeleter(Pass):
    name = "deleter"

    def run_on_function(self, fn, ctx):
        ctx.module.functions.pop("g", None)
        raise RuntimeError("die after deleting")


class _FunctionAdder(Pass):
    name = "adder"

    def run_on_function(self, fn, ctx):
        if "h" not in ctx.module.functions:
            ctx.module.functions["h"] = parse_module(SRC).functions["f"]
        raise RuntimeError("die after adding")


@pytest.mark.parametrize("cow", [True, False], ids=["cow", "full-clone"])
class TestExhaustiveRollback:
    def _run(self, pass_obj, cow):
        module = parse_module(SRC)
        pristine = format_module(module)
        original_name = module.name
        manager = GuardedPassManager(
            [pass_obj, Straighten()], policy="rollback", cow_snapshots=cow
        )
        manager.run(module)
        return module, pristine, original_name, manager

    def test_field_mutations_roll_back(self, cow):
        module, pristine, original_name, manager = self._run(_FieldMutator(), cow)
        assert format_module(module) == pristine
        assert module.name == original_name
        assert "invented_field" not in module.__dict__
        assert module.data["tab"].init[0] == 1
        assert manager.report.rollbacks == 1
        assert manager.report.failures[0].kind == "exception"

    def test_deleted_function_rolls_back(self, cow):
        module, pristine, _, manager = self._run(_FunctionDeleter(), cow)
        assert format_module(module) == pristine
        assert list(module.functions) == ["f", "g"]
        assert manager.report.rollbacks == 1

    def test_added_function_rolls_back(self, cow):
        module, pristine, _, manager = self._run(_FunctionAdder(), cow)
        assert format_module(module) == pristine
        assert "h" not in module.functions


class TestCounters:
    def test_fast_mode_reports_snapshot_counters(self):
        module = parse_module(SRC)
        manager = GuardedPassManager([Straighten()], policy="rollback")
        manager.run(module)
        counters = manager.report.counters
        assert "snapshot.fn_cloned" in counters
        assert counters["snapshot.full_clones"] == 0
        # JSON report carries them too.
        assert "counters" in manager.report.to_dict()

    def test_legacy_mode_takes_full_clones(self):
        module = parse_module(SRC)
        manager = GuardedPassManager(
            [Straighten()],
            policy="rollback",
            cow_snapshots=False,
            memoize=False,
        )
        manager.run(module)
        assert manager.report.counters["snapshot.full_clones"] == 1
        assert manager.report.counters["snapshot.fn_cloned"] == 0


class TestRetryDoubleRollback:
    def test_persistent_failure_still_restores(self):
        module = parse_module(SRC)
        pristine = format_module(module)
        manager = GuardedPassManager([_FieldMutator()], policy="retry")
        manager.run(module)
        assert format_module(module) == pristine
        assert module.name != "evil"
        record = manager.report.records[0]
        assert record.outcome == "rolled-back"
        assert record.failure.retried
