"""The chaos filesystem: fault injection and the power-loss model.

These tests pin the shim itself; its consumers (the cache shard's
durable publication, the journal's torn-tail recovery) are pinned in
``tests/perf/test_store_durability.py`` and ``tests/serve/test_journal.py``.
"""

import errno

import pytest

from repro.robustness.chaosfs import (
    REAL_FS,
    ChaosFs,
    ChaosSpec,
    SimulatedCrash,
)
from repro.robustness.faults import FaultPlan


class TestSpecs:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec(kind="sharknado")

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec(kind="eio", op="defragment")

    def test_times_budget(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="enospc", op="write", times=2)])
        target = tmp_path / "f"
        for _ in range(2):
            with pytest.raises(OSError) as info:
                fs.write_bytes(target, b"x")
            assert info.value.errno == errno.ENOSPC
        fs.write_bytes(target, b"x")  # budget spent
        assert target.read_bytes() == b"x"
        assert fs.injected["enospc"] == 2

    def test_path_glob_targets(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="eio", op="read", path="*.json", times=0)])
        victim = tmp_path / "entry.json"
        bystander = tmp_path / "entry.txt"
        REAL_FS.write_bytes(victim, b"v")
        REAL_FS.write_bytes(bystander, b"b")
        with pytest.raises(OSError) as info:
            fs.read_bytes(victim)
        assert info.value.errno == errno.EIO
        assert fs.read_bytes(bystander) == b"b"

    def test_probability_is_seeded(self, tmp_path):
        def run(seed):
            fs = ChaosFs([ChaosSpec(kind="enospc", op="write", p=0.5)], seed=seed)
            outcomes = []
            for i in range(40):
                try:
                    fs.write_bytes(tmp_path / f"f{i}", b"x")
                    outcomes.append(0)
                except OSError:
                    outcomes.append(1)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert 0 < sum(run(7)) < 40

    def test_compact_fault_plan_chaos_section(self):
        plan = FaultPlan.parse("dce:raise,fs:torn-write:3")
        assert len(plan.faults) == 1 and plan.faults[0].pass_name == "dce"
        assert len(plan.chaos) == 1
        assert plan.chaos[0].kind == "torn-write" and plan.chaos[0].times == 3

    def test_json_round_trip_with_chaos(self):
        plan = FaultPlan.parse("fs:eio:0")
        plan.chaos.append(ChaosSpec(kind="enospc", op="write", path="*.json", p=0.25))
        again = FaultPlan.from_json(plan.to_json())
        assert [s.to_dict() for s in again.chaos] == [s.to_dict() for s in plan.chaos]


class TestTornWrite:
    def test_torn_write_leaves_prefix_and_reports_success(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="torn-write", op="write")], seed=3)
        target = tmp_path / "f"
        data = b"A" * 1000
        fs.write_bytes(target, data)  # no exception: the caller is lied to
        written = target.read_bytes()
        assert len(written) < len(data)
        assert data.startswith(written)


class TestCrashModel:
    def test_unsynced_write_does_not_survive_crash(self, tmp_path):
        fs = ChaosFs()
        target = tmp_path / "f"
        fs.write_bytes(target, b"volatile")
        assert target.read_bytes() == b"volatile"  # live view
        fs.apply_crash()
        assert not target.exists()  # never fsynced -> gone

    def test_fsynced_write_survives_crash(self, tmp_path):
        fs = ChaosFs()
        target = tmp_path / "f"
        fs.write_bytes(target, b"durable")
        fs.fsync(target)
        fs.write_bytes(target, b"durable+later")
        fs.apply_crash()
        assert target.read_bytes() == b"durable"

    def test_preexisting_file_is_durable_baseline(self, tmp_path):
        target = tmp_path / "f"
        target.write_bytes(b"old")
        fs = ChaosFs()
        fs.write_bytes(target, b"new-unsynced")
        fs.apply_crash()
        assert target.read_bytes() == b"old"

    def test_rename_without_dir_fsync_is_lost(self, tmp_path):
        fs = ChaosFs()
        tmp = tmp_path / "f.tmp"
        dst = tmp_path / "f"
        dst.write_bytes(b"old")
        fs.write_bytes(tmp, b"new")
        fs.fsync(tmp)
        fs.replace(tmp, dst)
        assert dst.read_bytes() == b"new"  # live view sees the rename
        fs.apply_crash()
        assert dst.read_bytes() == b"old"  # ...but it never became durable

    def test_rename_without_file_fsync_publishes_nothing_durable(self, tmp_path):
        # The exact bug the store used to have: replace + dir fsync but
        # no fsync of the data file — the name survives, the bytes don't.
        fs = ChaosFs()
        tmp = tmp_path / "f.tmp"
        dst = tmp_path / "f"
        fs.write_bytes(tmp, b"new")
        fs.replace(tmp, dst)
        fs.fsync_dir(tmp_path)
        fs.apply_crash()
        assert not dst.exists() or dst.read_bytes() != b"new"

    def test_full_durable_publication_survives(self, tmp_path):
        fs = ChaosFs()
        tmp = tmp_path / "f.tmp"
        dst = tmp_path / "f"
        fs.write_bytes(tmp, b"new")
        fs.fsync(tmp)
        fs.replace(tmp, dst)
        fs.fsync_dir(tmp_path)
        fs.apply_crash()
        assert dst.read_bytes() == b"new"

    def test_crash_spec_raises_simulated_crash(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="crash", op="fsync")])
        target = tmp_path / "f"
        fs.write_bytes(target, b"x")
        with pytest.raises(SimulatedCrash):
            fs.fsync(target)
        assert fs.crashed
        fs.apply_crash()
        assert not target.exists()

    def test_simulated_crash_is_not_an_ordinary_exception(self):
        # The service's blanket `except Exception` must not absorb a
        # power cut.
        assert not issubclass(SimulatedCrash, Exception)

    def test_crash_starts_fresh_epoch(self, tmp_path):
        fs = ChaosFs()
        target = tmp_path / "f"
        fs.write_bytes(target, b"one")
        fs.apply_crash()
        fs.write_bytes(target, b"two")
        fs.fsync(target)
        fs.apply_crash()
        assert target.read_bytes() == b"two"


class TestCounters:
    def test_ops_and_injections_counted(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="enospc", op="write", times=1)])
        try:
            fs.write_bytes(tmp_path / "a", b"x")
        except OSError:
            pass
        fs.write_bytes(tmp_path / "a", b"x")
        fs.read_bytes(tmp_path / "a")
        counters = fs.counters
        assert counters["fs.ops"] == 3
        assert counters["fs.injected.enospc"] == 1
        assert counters["fs.injected.total"] == 1
