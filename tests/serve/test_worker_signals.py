"""The worker's SIGALRM soft-deadline must leave no trace on the host.

Regression tests for the save/restore contract of ``_deadline``: both
the pre-existing SIGALRM *handler* and any pre-armed *itimer* are
reinstated on exit. The itimer half is the subtle one — ``setitimer``
inside the guard silently cancelled an embedding host's own alarm, so a
process that wrapped ``handle_request`` under its own deadline would
never hear it fire.
"""

import signal
import time

import pytest

from repro.serve.worker import DeadlineExceeded, _deadline, handle_request

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="requires SIGALRM"
)

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""


class _OuterAlarm:
    """Arm an outer handler + itimer; restore everything on exit."""

    def __init__(self, seconds):
        self.seconds = seconds
        self.fired = []

    def __enter__(self):
        self._old_handler = signal.signal(
            signal.SIGALRM, lambda *_: self.fired.append(time.monotonic())
        )
        signal.setitimer(signal.ITIMER_REAL, self.seconds)
        return self

    def __exit__(self, *exc_info):
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, self._old_handler)
        return False


class TestDeadlineSaveRestore:
    def test_outer_handler_and_timer_are_restored(self):
        with _OuterAlarm(30.0) as outer:
            handler_inside = None
            with _deadline(5.0):
                handler_inside = signal.getsignal(signal.SIGALRM)
            remaining, _interval = signal.getitimer(signal.ITIMER_REAL)
            restored = signal.getsignal(signal.SIGALRM)
            # Inside: our alarm handler; outside: the host's, with its
            # timer re-armed at (remaining - elapsed), not cancelled.
            assert handler_inside is not restored
            assert 0.0 < remaining <= 30.0
            assert not outer.fired

    def test_outer_deadline_expiring_inside_still_fires(self):
        with _OuterAlarm(0.05) as outer:
            with _deadline(10.0):
                time.sleep(0.1)  # outer deadline passes while suspended
            # Re-armed at epsilon: the host hears its (late) alarm.
            deadline = time.monotonic() + 2.0
            while not outer.fired and time.monotonic() < deadline:
                time.sleep(0.005)
            assert outer.fired

    def test_no_outer_timer_means_none_left_armed(self):
        old = signal.signal(signal.SIGALRM, signal.SIG_DFL)
        try:
            with _deadline(5.0):
                pass
            assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
            assert signal.getsignal(signal.SIGALRM) is signal.SIG_DFL
        finally:
            signal.signal(signal.SIGALRM, old)

    def test_deadline_still_fires_for_its_own_overrun(self):
        with pytest.raises(DeadlineExceeded):
            with _deadline(0.05):
                time.sleep(5.0)

    def test_unarmed_guard_is_a_noop(self):
        before = signal.getsignal(signal.SIGALRM)
        with _deadline(None):
            pass
        assert signal.getsignal(signal.SIGALRM) is before


class TestHandleRequestSignals:
    def test_soft_timeout_answers_and_restores_host_state(self):
        with _OuterAlarm(30.0) as outer:
            response = handle_request(
                {
                    "ir": SRC,
                    "level": "none",
                    "deadline": 0.1,
                    "inject": {"kind": "soft-hang", "seconds": 30.0},
                },
                worker_id=0,
            )
            remaining, _interval = signal.getitimer(signal.ITIMER_REAL)
            assert response["status"] == "timeout"
            assert 0.0 < remaining <= 30.0
            assert not outer.fired

    def test_successful_compile_restores_host_state(self):
        with _OuterAlarm(30.0):
            response = handle_request(
                {"ir": SRC, "level": "vliw", "deadline": 10.0}, worker_id=0
            )
            remaining, _interval = signal.getitimer(signal.ITIMER_REAL)
            assert response["status"] == "ok"
            assert 0.0 < remaining <= 30.0
