"""CompileService logic against a scripted in-process fake pool.

Everything above the process boundary — the degradation ladder, retry
policy, breaker integration, caching, dedupe and backpressure — is
deterministic logic, so it is tested here with a FakePool that answers
from a script. Real worker processes are exercised in
``test_worker_pool.py`` and the soak benchmark.
"""

import threading
import time

from repro.perf.memo import CompileCache
from repro.serve.breaker import CircuitBreaker
from repro.serve.service import CompileService, ServeRequest

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}


class FakePool:
    """Answers ``submit`` from a handler; records every worker request."""

    grace = 0.1

    def __init__(self, handler):
        self.handler = handler
        self.calls = []

    def submit(self, request, deadline=None):
        self.calls.append(request)
        return self.handler(request)

    def stats(self):
        return {"workers": 1, "alive": 1}


def scripted(script):
    """``script``: (level, attempt-index-at-level) -> response dict."""
    seen = {}

    def handler(request):
        level = request["level"]
        index = seen.get(level, 0)
        seen[level] = index + 1
        return script(level, index)

    return FakePool(handler)


def service(pool, **kwargs):
    kwargs.setdefault("cache", CompileCache(max_entries=8))
    kwargs.setdefault("deadline", 1.0)
    return CompileService(pool, **kwargs)


class TestHappyPath:
    def test_ok_at_requested_level(self):
        svc = service(FakePool(lambda _req: dict(OK)))
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "ok"
        assert response.level_served == "vliw"
        assert not response.degraded and not response.cached
        assert [a.status for a in response.attempts] == ["ok"]
        assert response.http_status == 200

    def test_second_identical_request_is_a_cache_hit(self):
        pool = FakePool(lambda _req: dict(OK))
        svc = service(pool)
        svc.compile(ServeRequest(ir=SRC))
        warm = svc.compile(ServeRequest(ir=SRC))
        assert warm.status == "ok" and warm.cached
        assert len(pool.calls) == 1

    def test_options_split_the_cache(self):
        pool = FakePool(lambda _req: dict(OK))
        svc = service(pool)
        svc.compile(ServeRequest(ir=SRC, options={"unroll_factor": 2}))
        miss = svc.compile(ServeRequest(ir=SRC, options={"unroll_factor": 4}))
        assert not miss.cached
        assert len(pool.calls) == 2


class TestLadder:
    def test_deterministic_failure_degrades_immediately(self):
        pool = scripted(
            lambda level, _i: {"status": "error", "detail": "pass blew up"}
            if level == "vliw" else dict(OK)
        )
        svc = service(pool)
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "ok"
        assert response.level_served == "base"
        assert response.degraded
        assert [(a.level, a.status) for a in response.attempts] == [
            ("vliw", "crash"), ("base", "ok"),
        ]

    def test_transient_crash_gets_one_same_level_retry(self):
        pool = scripted(
            lambda level, i: {"status": "crash", "detail": "worker died"}
            if level == "vliw" and i == 0 else dict(OK)
        )
        svc = service(pool)
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "ok"
        assert response.level_served == "vliw"
        assert not response.degraded
        assert [(a.level, a.status) for a in response.attempts] == [
            ("vliw", "crash"), ("vliw", "ok"),
        ]

    def test_timeout_retries_then_degrades(self):
        pool = scripted(
            lambda level, _i: {"status": "timeout", "detail": "killed"}
            if level == "vliw" else dict(OK)
        )
        svc = service(pool)
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.level_served == "base" and response.degraded
        assert [(a.level, a.status) for a in response.attempts] == [
            ("vliw", "timeout"), ("vliw", "timeout"), ("base", "ok"),
        ]

    def test_every_level_failing_is_a_failed_response(self):
        svc = service(FakePool(lambda _req: {"status": "error", "detail": "no"}))
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "failed"
        assert response.http_status == 500
        assert "every ladder level failed" in response.detail
        assert [a.level for a in response.attempts] == ["vliw", "base", "none"]

    def test_degraded_results_are_not_cached(self):
        pool = scripted(
            lambda level, _i: {"status": "error"} if level == "vliw" else dict(OK)
        )
        svc = service(pool)
        first = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        second = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert first.degraded and second.degraded
        assert not second.cached  # a fixed compiler restores full quality

    def test_worker_reject_of_validated_ir_fails_loudly(self):
        svc = service(FakePool(lambda _req: {"status": "reject", "detail": "??"}))
        response = svc.compile(ServeRequest(ir=SRC))
        assert response.status == "failed"
        assert "worker rejected validated IR" in response.detail


class TestBreakerIntegration:
    def test_known_poison_input_skips_to_safe_level(self):
        pool = scripted(
            lambda level, _i: {"status": "error"} if level == "vliw" else dict(OK)
        )
        svc = service(pool, breaker=CircuitBreaker(threshold=1, cooldown=60.0))
        first = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert first.degraded and not first.breaker_skip
        second = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert second.status == "ok"
        assert second.breaker_skip
        # No vliw attempt at all the second time around.
        assert [a.level for a in second.attempts] == ["base"]

    def test_success_closes_the_breaker(self):
        responses = {"fail": True}
        pool = scripted(
            lambda level, _i: {"status": "error"}
            if level == "vliw" and responses["fail"] else dict(OK)
        )
        svc = service(pool, breaker=CircuitBreaker(threshold=2, cooldown=0.0))
        svc.compile(ServeRequest(ir=SRC, level="vliw", inject={"kind": "none"}))
        responses["fail"] = False
        healed = svc.compile(ServeRequest(ir=SRC, level="vliw", inject={"kind": "none"}))
        assert healed.level_served == "vliw" and not healed.degraded


class TestAdmission:
    def test_invalid_ir_is_rejected_without_a_worker(self):
        pool = FakePool(lambda _req: dict(OK))
        svc = service(pool)
        response = svc.compile(ServeRequest(ir="this is not IR"))
        assert response.status == "reject"
        assert response.http_status == 400
        assert pool.calls == []

    def test_backpressure_sheds_over_the_pending_limit(self):
        svc = service(FakePool(lambda _req: dict(OK)), max_pending=0)
        response = svc.compile(ServeRequest(ir=SRC))
        assert response.status == "shed"
        assert response.http_status == 429
        assert svc.failures_by_kind["overload"] == 1

    def test_internal_error_becomes_failed_response(self):
        def explode(_req):
            raise RuntimeError("supervisor bug")

        svc = service(FakePool(explode))
        response = svc.compile(ServeRequest(ir=SRC))
        assert response.status == "failed"
        assert "supervisor bug" in response.detail


class TestDedupe:
    def test_concurrent_identical_compiles_share_one_execution(self):
        entered = threading.Event()
        release = threading.Event()

        def handler(_req):
            entered.set()
            assert release.wait(timeout=5.0)
            return dict(OK)

        pool = FakePool(handler)
        svc = service(pool)
        results = {}

        def leader():
            results["leader"] = svc.compile(ServeRequest(ir=SRC, request_id="L"))

        def follower():
            results["follower"] = svc.compile(ServeRequest(ir=SRC, request_id="F"))

        t1 = threading.Thread(target=leader)
        t1.start()
        assert entered.wait(timeout=5.0)
        t2 = threading.Thread(target=follower)
        t2.start()
        # Let the follower reach the rendezvous before releasing.
        for _ in range(500):
            if svc.dedupe_hits:
                break
            time.sleep(0.01)
        release.set()
        t1.join(timeout=5.0)
        t2.join(timeout=5.0)
        assert results["leader"].status == "ok"
        assert results["follower"].status == "ok"
        assert results["follower"].deduped
        assert results["follower"].request_id == "F"
        assert len(pool.calls) == 1
        assert svc.dedupe_hits == 1


class TestStats:
    def test_stats_document_shape(self):
        svc = service(FakePool(lambda _req: dict(OK)))
        svc.compile(ServeRequest(ir=SRC))
        svc.compile(ServeRequest(ir=SRC))
        svc.compile(ServeRequest(ir="bogus"))
        stats = svc.stats()
        assert stats["requests"]["total"] == 3
        assert stats["requests"]["ok"] == 2
        assert stats["requests"]["rejected"] == 1
        assert stats["levels_served"] == {"vliw": 2}
        assert stats["cache"]["cache.hits"] == 1
        assert stats["latency_ms"]["count"] == 3
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] >= 0
        assert set(stats["failures"]) == {
            "crash", "timeout", "sanitizer-violation", "oom", "overload",
        }

    def test_health_reflects_pool(self):
        svc = service(FakePool(lambda _req: dict(OK)))
        health = svc.health()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 1
