"""Resource-exhaustion containment: the rlimit, the ``oom`` answer,
and the ladder's response to it.

The real-process tests prove an over-allocating compile is contained
*inside* the worker — the process answers and keeps serving; the
kernel OOM killer and the supervisor's crash path never fire. The
service-level tests (FakePool) pin how ``oom`` feeds the degradation
ladder and the failure taxonomy.
"""

import sys

import pytest

from repro.perf.memo import CompileCache
from repro.serve.pool import WorkerPool
from repro.serve.service import CompileService, ServeRequest
from repro.serve.worker import apply_memory_limit

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}


def _request(**overrides):
    request = {"ir": SRC, "level": "vliw", "attempt": 0, "options": {}}
    request.update(overrides)
    return request


@pytest.mark.skipif(sys.platform == "win32", reason="rlimit is POSIX")
class TestWorkerContainment:
    @pytest.fixture()
    def pool(self):
        with WorkerPool(workers=1, deadline=10.0, grace=1.0,
                        mem_headroom_bytes=64 * 1024 * 1024) as p:
            yield p

    def test_rlimit_is_installable_here(self):
        # The drill below is only meaningful where the cap installs;
        # this canary fails loudly if the platform regresses. The limit
        # applies to the *calling* process, so probe in a throwaway fork.
        import os

        pid = os.fork()
        if pid == 0:  # child
            os._exit(0 if apply_memory_limit(1 << 30) else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0

    def test_memory_hog_is_contained_as_oom(self, pool):
        answer = pool.submit(
            _request(inject={"kind": "memory-hog", "mb": 512}), deadline=10.0
        )
        assert answer["status"] == "oom"
        assert "memory" in answer["detail"]
        # Contained in-worker: no crash, no kill, no respawn.
        assert pool.crashes == 0 and pool.timeouts == 0
        assert pool.stats()["alive"] == 1

    def test_worker_keeps_serving_after_oom(self, pool):
        pool.submit(_request(inject={"kind": "memory-hog", "mb": 512}))
        healed = pool.submit(_request())
        assert healed["status"] == "ok"
        assert pool.stats()["respawns"] == 0  # the same process answered


class TestLadderResponse:
    class OomPool:
        """``oom`` at vliw, ok below — and a call log to prove no retry."""

        grace = 0.1

        def __init__(self):
            self.calls = []

        def submit(self, request, deadline=None):
            self.calls.append(request["level"])
            if request["level"] == "vliw":
                return {"status": "oom", "detail": "compile exceeded the limit"}
            return dict(OK)

        def stats(self):
            return {"workers": 1, "alive": 1}

    def service(self, pool):
        return CompileService(pool, cache=CompileCache(max_entries=8),
                              deadline=1.0)

    def test_oom_degrades_immediately_without_retry(self):
        pool = self.OomPool()
        response = self.service(pool).compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "ok"
        assert response.degraded and response.level_served == "base"
        # Deterministic failure: exactly one vliw attempt, no same-level
        # retry (same compile, same limit, same outcome).
        assert pool.calls == ["vliw", "base"]
        assert [(a.level, a.status) for a in response.attempts] == [
            ("vliw", "oom"), ("base", "ok"),
        ]

    def test_oom_is_its_own_failure_kind(self):
        svc = self.service(self.OomPool())
        svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert svc.failures_by_kind["oom"] == 1
        assert svc.failures_by_kind["crash"] == 0
        assert svc.stats()["failures"]["oom"] == 1

    def test_oom_feeds_the_breaker(self):
        from repro.serve.breaker import CircuitBreaker

        pool = self.OomPool()
        svc = CompileService(pool, cache=CompileCache(max_entries=8),
                             deadline=1.0,
                             breaker=CircuitBreaker(threshold=1, cooldown=600.0))
        svc.compile(ServeRequest(ir=SRC, level="vliw"))
        second = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert second.breaker_skip
        assert [a.level for a in second.attempts] == ["base"]


class TestPlatformFallback:
    def test_no_headroom_means_no_limit(self):
        assert apply_memory_limit(None) is None
        assert apply_memory_limit(0) is None
