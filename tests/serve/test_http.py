"""HTTP front end and the JSON-lines stdin loop.

The front end runs on a real socket (port 0) with the asyncio loop on
a background thread; requests go through ``http.client`` so the
hand-rolled parser sees genuine wire bytes. The service underneath
uses a scripted fake pool — worker realism lives in
``test_worker_pool.py``.
"""

import asyncio
import io
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.serve.http import HttpFrontEnd, request_from_wire, serve_stdin
from repro.serve.service import CompileService

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}


class FakePool:
    grace = 0.1

    def submit(self, request, deadline=None):
        return dict(OK)

    def stats(self):
        return {"workers": 1, "alive": 1}


class DeadPool(FakePool):
    def stats(self):
        return {"workers": 1, "alive": 0}


def _serve(service):
    front = HttpFrontEnd(service)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(front.start(), loop).result(timeout=5)

    def teardown():
        asyncio.run_coroutine_threadsafe(front.stop(), loop).result(timeout=5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=2)

    return front, teardown


@pytest.fixture()
def front():
    front, teardown = _serve(CompileService(FakePool(), deadline=1.0))
    yield front
    teardown()


def _call(front, method, path, body=None):
    conn = HTTPConnection("127.0.0.1", front.port, timeout=10)
    payload = json.dumps(body) if isinstance(body, dict) else body
    conn.request(method, path, body=payload)
    response = conn.getresponse()
    data = json.loads(response.read())
    conn.close()
    return response.status, data


class TestCompileEndpoint:
    def test_post_compile_ok(self, front):
        status, data = _call(front, "POST", "/compile",
                             {"ir": SRC, "level": "vliw", "id": "r1"})
        assert status == 200
        assert data["status"] == "ok"
        assert data["level_served"] == "vliw"
        assert data["request_id"] == "r1"
        assert "func main" in data["ir"]

    def test_post_invalid_ir_is_400(self, front):
        status, data = _call(front, "POST", "/compile", {"ir": "garbage"})
        assert status == 400
        assert data["status"] == "reject"

    def test_post_malformed_json_is_400(self, front):
        status, data = _call(front, "POST", "/compile", "{not json")
        assert status == 400
        assert "error" in data

    def test_post_missing_ir_field_is_400(self, front):
        status, data = _call(front, "POST", "/compile", {"level": "vliw"})
        assert status == 400
        assert "ir" in data["error"]


class TestOtherRoutes:
    def test_healthz_ok(self, front):
        status, data = _call(front, "GET", "/healthz")
        assert status == 200
        assert data["status"] == "ok"
        assert data["workers_alive"] == 1

    def test_healthz_degraded_is_503(self):
        front, teardown = _serve(CompileService(DeadPool(), deadline=1.0))
        try:
            status, data = _call(front, "GET", "/healthz")
            assert status == 503
            assert data["status"] == "degraded"
        finally:
            teardown()

    def test_stats_counts_requests(self, front):
        _call(front, "POST", "/compile", {"ir": SRC})
        status, data = _call(front, "GET", "/stats")
        assert status == 200
        assert data["requests"]["total"] == 1
        assert data["requests"]["ok"] == 1
        assert "latency_ms" in data and "pool" in data

    def test_unknown_route_is_404(self, front):
        status, data = _call(front, "GET", "/nope")
        assert status == 404


class TestWire:
    def test_request_from_wire_requires_ir(self):
        with pytest.raises(ValueError):
            request_from_wire({"level": "vliw"})
        with pytest.raises(ValueError):
            request_from_wire(["not", "a", "dict"])

    def test_request_from_wire_defaults(self):
        request = request_from_wire({"ir": SRC})
        assert request.level == "vliw"
        assert request.options == {}
        assert request.deadline is None

    def test_request_from_wire_rejects_unknown_engine(self):
        # Admission-time 400, not a ladder of doomed worker attempts.
        with pytest.raises(ValueError, match="unknown engine"):
            request_from_wire({"ir": SRC, "options": {"engine": "jit"}})

    def test_request_from_wire_accepts_closure_engine(self):
        request = request_from_wire(
            {"ir": SRC, "options": {"engine": "closure"}}
        )
        assert request.options["engine"] == "closure"


class TestStdinLoop:
    def test_json_lines_round_trip(self):
        service = CompileService(FakePool(), deadline=1.0)
        stdin = io.StringIO(
            json.dumps({"ir": SRC, "id": "a"}) + "\n"
            + "\n"  # blank lines are skipped
            + "not json\n"
            + json.dumps({"ir": SRC, "id": "b"}) + "\n"
        )
        stdout = io.StringIO()
        served = serve_stdin(service, stdin=stdin, stdout=stdout)
        lines = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert served == 2
        assert [l["status"] for l in lines] == ["ok", "reject", "ok"]
        assert lines[0]["request_id"] == "a"
        assert lines[2]["request_id"] == "b"