"""Write-ahead journal: records, replay, checkpoints, crash recovery,
graceful shutdown.

Journal mechanics are tested directly; the service-level tests use the
same scripted FakePool as ``test_service.py`` and simulate a crash the
honest way — an ``accept`` record with no completion, exactly what a
SIGKILL mid-compile leaves behind. The full out-of-process kill is the
soak benchmark's job (``benchmarks/test_e12_chaos_soak.py``).
"""

import threading

from repro.perf.memo import CompileCache
from repro.robustness.chaosfs import REAL_FS, ChaosFs, ChaosSpec
from repro.serve.breaker import CircuitBreaker
from repro.serve.journal import (
    JOURNAL_NAME,
    WriteAheadJournal,
    decode_record,
    encode_record,
)
from repro.serve.service import CompileService, ServeRequest

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}


class FakePool:
    grace = 0.1

    def __init__(self, handler):
        self.handler = handler
        self.calls = []

    def submit(self, request, deadline=None):
        self.calls.append(request)
        return self.handler(request)

    def stats(self):
        return {"workers": 1, "alive": 1}


def service(pool, tmp_path, **kwargs):
    kwargs.setdefault("cache", CompileCache(max_entries=8))
    kwargs.setdefault("deadline", 1.0)
    kwargs.setdefault("journal", WriteAheadJournal(tmp_path))
    return CompileService(pool, **kwargs)


def wire(ir=SRC, request_id=None):
    return {"ir": ir, "level": "vliw", "options": {}, "id": request_id,
            "deadline": None}


class TestRecords:
    def test_round_trip(self):
        record = {"t": "accept", "req": {"ir": "x"}, "seq": 7}
        assert decode_record(encode_record(record).rstrip(b"\n")) == record

    def test_flipped_byte_fails_checksum(self):
        line = bytearray(encode_record({"t": "accept", "seq": 1}))
        line[-5] ^= 0xFF
        assert decode_record(bytes(line)) is None

    def test_torn_prefix_is_rejected(self):
        line = encode_record({"t": "complete", "accept": 3, "seq": 4})
        for cut in (1, len(line) // 2, len(line) - 2):
            assert decode_record(line[:cut]) is None

    def test_garbage_is_rejected(self):
        assert decode_record(b"") is None
        assert decode_record(b"not a journal line") is None


class TestReplay:
    def test_accept_without_complete_is_inflight(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        done = journal.append_accept(wire(request_id="done"))
        journal.append_accept(wire(ir=SRC + "\n", request_id="lost"))
        journal.append_complete(done, "ok", fingerprint="fp", level_served="vliw")
        state = WriteAheadJournal(tmp_path).replay()
        assert [req["id"] for req in state.inflight] == ["lost"]
        assert state.completed == 1
        assert state.corrupt_skipped == 0

    def test_torn_tail_is_skipped_and_rest_survives(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.append_accept(wire(request_id="a"))
        journal.append_accept(wire(request_id="b"))
        torn = encode_record({"t": "complete", "accept": 1, "seq": 3})
        REAL_FS.append_bytes(journal.path, torn[: len(torn) // 2])
        state = WriteAheadJournal(tmp_path).replay()
        assert state.corrupt_skipped == 1
        assert state.replayed == 2
        # The lost completion re-enqueues "a" — at-least-once, never lost.
        assert [req["id"] for req in state.inflight] == ["a", "b"]

    def test_corrupt_middle_record_is_skipped(self, tmp_path):
        good1 = encode_record({"t": "accept", "req": wire(request_id="x"), "seq": 1})
        bad = b"0123456789ab {\"t\":\"accept\"}\n"
        good2 = encode_record({"t": "complete", "accept": 1, "seq": 2})
        (tmp_path / JOURNAL_NAME).write_bytes(good1 + bad + good2)
        state = WriteAheadJournal(tmp_path).replay()
        assert state.corrupt_skipped == 1
        assert state.inflight == []
        assert state.completed == 1

    def test_empty_state_dir_replays_to_nothing(self, tmp_path):
        state = WriteAheadJournal(tmp_path).replay()
        assert state.inflight == [] and state.replayed == 0

    def test_seq_continues_after_replay(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.append_accept(wire())
        journal.append_accept(wire())
        fresh = WriteAheadJournal(tmp_path)
        fresh.replay()
        assert fresh.append_accept(wire()) == 3


class TestCheckpoint:
    def test_checkpoint_truncates_history(self, tmp_path):
        journal = WriteAheadJournal(tmp_path, checkpoint_every=3)
        for index in range(3):
            journal.append_accept(wire(request_id=f"r{index}"))
        assert journal.should_checkpoint
        journal.checkpoint(
            breaker={"failures": {"fp|vliw": 2}, "open_remaining": {}},
            counters={"requests": 3},
            inflight=[wire(request_id="r2")],
        )
        assert not journal.should_checkpoint
        raw = (tmp_path / JOURNAL_NAME).read_bytes()
        assert raw.count(b"\n") == 1  # exactly the checkpoint record
        state = WriteAheadJournal(tmp_path).replay()
        assert [req["id"] for req in state.inflight] == ["r2"]
        assert state.breaker["failures"] == {"fp|vliw": 2}
        assert state.counters == {"requests": 3}

    def test_appends_after_checkpoint_compose(self, tmp_path):
        journal = WriteAheadJournal(tmp_path)
        journal.checkpoint(breaker={}, counters={"requests": 5},
                           inflight=[wire(request_id="old")])
        journal.append_accept(wire(request_id="new"))
        state = WriteAheadJournal(tmp_path).replay()
        assert sorted(req["id"] for req in state.inflight) == ["new", "old"]

    def test_failed_checkpoint_keeps_old_journal(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="enospc", op="write", path="*.new", times=1)])
        journal = WriteAheadJournal(tmp_path, fs=fs, checkpoint_every=1)
        journal.append_accept(wire(request_id="keep"))
        journal.checkpoint(breaker={}, counters={}, inflight=[])
        assert journal.checkpoints == 0
        assert journal.append_errors == 1
        state = WriteAheadJournal(tmp_path).replay()
        assert [req["id"] for req in state.inflight] == ["keep"]
        journal.checkpoint(breaker={}, counters={}, inflight=[])  # fault spent
        assert journal.checkpoints == 1

    def test_append_enospc_is_contained_and_counted(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="enospc", op="write",
                                path=f"*{JOURNAL_NAME}", times=0)])
        journal = WriteAheadJournal(tmp_path, fs=fs)
        journal.append_accept(wire())
        assert journal.append_errors == 1 and journal.appends == 0


class TestBreakerPersistence:
    def test_snapshot_round_trip(self):
        clock = lambda: 100.0  # noqa: E731
        breaker = CircuitBreaker(threshold=2, cooldown=30.0, clock=clock)
        breaker.record_failure("fp", "vliw")
        breaker.record_failure("fp", "vliw")
        assert breaker.is_open("fp", "vliw")
        snap = breaker.snapshot()
        assert snap["failures"] == {"fp|vliw": 2}
        assert snap["open_remaining"] == {"fp|vliw": 30.0}
        fresh = CircuitBreaker(threshold=2, cooldown=30.0, clock=lambda: 7000.0)
        fresh.restore(snap)
        # Remaining (not absolute) deadlines: still open on the new clock.
        assert fresh.is_open("fp", "vliw")

    def test_expired_entries_do_not_restore(self):
        times = {"now": 100.0}
        breaker = CircuitBreaker(threshold=1, cooldown=5.0,
                                 clock=lambda: times["now"])
        breaker.record_failure("fp", "vliw")
        times["now"] = 200.0  # cooldown long past
        fresh = CircuitBreaker()
        fresh.restore(breaker.snapshot())
        assert not fresh.is_open("fp", "vliw")
        # ...but the failure count survives, so one more failure re-opens.
        assert fresh._failures[("fp", "vliw")] == 1


class TestServiceRecovery:
    def test_unfinished_request_is_recompiled_after_restart(self, tmp_path):
        # Crash leftovers: an accept with no completion.
        WriteAheadJournal(tmp_path).append_accept(wire(request_id="lost"))
        pool = FakePool(lambda _req: dict(OK))
        svc = service(pool, tmp_path)
        summary = svc.recover(block=True)
        assert summary["recovered_inflight"] == 1
        assert len(pool.calls) == 1
        assert svc.completed == 1
        assert svc.health()["status"] == "ok"
        # Recovery work was re-journaled and checkpointed away: a second
        # restart has nothing left to redo.
        again = service(FakePool(lambda _req: dict(OK)), tmp_path)
        assert again.recover(block=True)["recovered_inflight"] == 0

    def test_completed_requests_are_not_redone(self, tmp_path):
        first_pool = FakePool(lambda _req: dict(OK))
        first = service(first_pool, tmp_path)
        first.compile(ServeRequest(ir=SRC))
        pool = FakePool(lambda _req: dict(OK))
        svc = service(pool, tmp_path)
        assert svc.recover(block=True)["recovered_inflight"] == 0
        assert pool.calls == []

    def test_health_reports_recovering_until_backlog_drains(self, tmp_path):
        WriteAheadJournal(tmp_path).append_accept(wire(request_id="lost"))
        release = threading.Event()
        entered = threading.Event()

        def handler(_req):
            entered.set()
            assert release.wait(timeout=5.0)
            return dict(OK)

        svc = service(FakePool(handler), tmp_path)
        svc.recover(block=False)
        assert entered.wait(timeout=5.0)
        health = svc.health()
        assert health["status"] == "recovering" and health["recovering"] == 1
        release.set()
        svc._recovery_thread.join(timeout=5.0)
        assert svc.health()["status"] == "ok"
        assert svc.recovery_seconds is not None

    def test_counters_survive_restart(self, tmp_path):
        first = service(FakePool(lambda _req: dict(OK)), tmp_path)
        first.compile(ServeRequest(ir=SRC))
        first.compile(ServeRequest(ir="bogus"))  # reject
        first.flush()
        svc = service(FakePool(lambda _req: dict(OK)), tmp_path)
        svc.recover(block=True)
        assert svc.requests == 2
        assert svc.completed == 1
        assert svc.rejected == 1
        assert svc.stats()["requests"]["total"] == 2

    def test_breaker_poison_memory_survives_restart(self, tmp_path):
        def poisoned(request):
            return ({"status": "error", "detail": "pass blew up"}
                    if request["level"] == "vliw" else dict(OK))

        first = service(FakePool(poisoned), tmp_path,
                        breaker=CircuitBreaker(threshold=1, cooldown=600.0))
        degraded = first.compile(ServeRequest(ir=SRC, level="vliw"))
        assert degraded.degraded
        first.flush()

        pool = FakePool(poisoned)
        svc = service(pool, tmp_path,
                      breaker=CircuitBreaker(threshold=1, cooldown=600.0))
        svc.recover(block=True)
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        # The fresh process remembers the poison: no vliw attempt at all.
        assert response.breaker_skip
        assert [a.level for a in response.attempts] == ["base"]
        assert all(call["level"] != "vliw" for call in pool.calls)

    def test_journal_section_in_stats(self, tmp_path):
        svc = service(FakePool(lambda _req: dict(OK)), tmp_path)
        svc.compile(ServeRequest(ir=SRC))
        journal_stats = svc.stats()["journal"]
        assert journal_stats["journal.appends"] == 2  # accept + complete
        assert journal_stats["recovery_pending"] == 0

    def test_no_journal_means_no_journal_stats(self, tmp_path):
        svc = service(FakePool(lambda _req: dict(OK)), tmp_path, journal=None)
        assert svc.stats()["journal"] is None
        assert svc.recover() == {"recovered_inflight": 0, "replayed": 0}


class TestGracefulShutdown:
    def test_shutdown_sheds_new_requests(self, tmp_path):
        svc = service(FakePool(lambda _req: dict(OK)), tmp_path)
        svc.begin_shutdown()
        response = svc.compile(ServeRequest(ir=SRC))
        assert response.status == "shed"
        assert "shutting down" in response.detail
        assert response.http_status == 429

    def test_drain_waits_for_inflight(self, tmp_path):
        release = threading.Event()
        entered = threading.Event()

        def handler(_req):
            entered.set()
            assert release.wait(timeout=5.0)
            return dict(OK)

        svc = service(FakePool(handler), tmp_path)
        worker = threading.Thread(
            target=svc.compile, args=(ServeRequest(ir=SRC),)
        )
        worker.start()
        assert entered.wait(timeout=5.0)
        svc.begin_shutdown()
        assert not svc.drain(deadline=0.05)  # still busy
        release.set()
        assert svc.drain(deadline=5.0)
        worker.join(timeout=5.0)

    def test_flush_writes_a_checkpoint(self, tmp_path):
        svc = service(FakePool(lambda _req: dict(OK)), tmp_path)
        svc.compile(ServeRequest(ir=SRC))
        svc.flush()
        assert svc.journal.checkpoints == 1
        raw = (tmp_path / JOURNAL_NAME).read_bytes()
        assert raw.count(b"\n") == 1
