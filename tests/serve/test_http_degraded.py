"""Degraded-mode HTTP transitions: 429 under pressure, 503 during
recovery, and back.

``test_http.py`` pins the routes; this file pins the *state machine*
visible through them — what a load balancer actually keys on. The
pressure tests hold a request open inside the pool so the pending
counter (not timing luck) is what trips the shed path.
"""

import asyncio
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.serve.http import HttpFrontEnd
from repro.serve.journal import WriteAheadJournal
from repro.serve.service import CompileService, ServeRequest

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}


class GatedPool:
    """Every submit blocks until ``release`` is set."""

    grace = 0.1

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def submit(self, request, deadline=None):
        self.entered.set()
        assert self.release.wait(timeout=10.0)
        return dict(OK)

    def stats(self):
        return {"workers": 1, "alive": 1}


def _serve(service):
    front = HttpFrontEnd(service)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(front.start(), loop).result(timeout=5)

    def teardown():
        asyncio.run_coroutine_threadsafe(front.stop(), loop).result(timeout=5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=2)

    return front, teardown


def _call(front, method, path, body=None):
    conn = HTTPConnection("127.0.0.1", front.port, timeout=10)
    payload = json.dumps(body) if isinstance(body, dict) else body
    conn.request(method, path, body=payload)
    response = conn.getresponse()
    data = json.loads(response.read())
    conn.close()
    return response.status, data


class TestBackpressure429:
    def test_pending_limit_sheds_with_429(self):
        pool = GatedPool()
        front, teardown = _serve(
            CompileService(pool, deadline=5.0, max_pending=1)
        )
        try:
            first = {}
            runner = threading.Thread(
                target=lambda: first.update(
                    zip(("status", "data"),
                        _call(front, "POST", "/compile", {"ir": SRC, "id": "slow"}))
                )
            )
            runner.start()
            assert pool.entered.wait(timeout=5.0)  # slot is now held
            status, data = _call(front, "POST", "/compile",
                                 {"ir": SRC, "id": "over"})
            assert status == 429
            assert data["status"] == "shed"
            assert "pending" in data["detail"]
            pool.release.set()
            runner.join(timeout=10.0)
            # The held request was never shed; pressure gone, 200s return.
            assert first["status"] == 200
            status, _data = _call(front, "POST", "/compile", {"ir": SRC})
            assert status == 200
        finally:
            pool.release.set()
            teardown()

    def test_shed_shows_up_in_stats(self):
        pool = GatedPool()
        front, teardown = _serve(
            CompileService(pool, deadline=5.0, max_pending=1)
        )
        try:
            runner = threading.Thread(
                target=_call, args=(front, "POST", "/compile", {"ir": SRC})
            )
            runner.start()
            assert pool.entered.wait(timeout=5.0)
            _call(front, "POST", "/compile", {"ir": SRC})
            pool.release.set()
            runner.join(timeout=10.0)
            _status, stats = _call(front, "GET", "/stats")
            assert stats["requests"]["shed"] == 1
            assert stats["failures"]["overload"] == 1
        finally:
            pool.release.set()
            teardown()

    def test_shutdown_sheds_with_429(self):
        class InstantPool(GatedPool):
            def submit(self, request, deadline=None):
                return dict(OK)

        service = CompileService(InstantPool(), deadline=1.0)
        front, teardown = _serve(service)
        try:
            service.begin_shutdown()
            status, data = _call(front, "POST", "/compile", {"ir": SRC})
            assert status == 429
            assert "shutting down" in data["detail"]
        finally:
            teardown()


class TestRecovery503:
    def test_healthz_503_while_recovering_then_200(self, tmp_path):
        # The crash leftover: an accepted request that never completed.
        WriteAheadJournal(tmp_path).append_accept(
            {"ir": SRC, "level": "vliw", "options": {}, "id": "lost",
             "deadline": None}
        )
        pool = GatedPool()
        service = CompileService(
            pool, deadline=5.0, journal=WriteAheadJournal(tmp_path)
        )
        front, teardown = _serve(service)
        try:
            service.recover(block=False)
            assert pool.entered.wait(timeout=5.0)  # backlog replay started
            status, data = _call(front, "GET", "/healthz")
            assert status == 503
            assert data["status"] == "recovering"
            assert data["recovering"] == 1

            pool.release.set()
            service._recovery_thread.join(timeout=10.0)
            status, data = _call(front, "GET", "/healthz")
            assert status == 200
            assert data["status"] == "ok"

            _status, stats = _call(front, "GET", "/stats")
            assert stats["journal"]["recovered_inflight"] == 1
            assert stats["journal"]["recovery_pending"] == 0
            assert stats["journal"]["recovery_seconds"] >= 0
            # The lost request really ran to completion.
            assert stats["requests"]["ok"] == 1
        finally:
            pool.release.set()
            teardown()

    def test_restart_without_backlog_is_immediately_healthy(self, tmp_path):
        class InstantPool(GatedPool):
            def submit(self, request, deadline=None):
                return dict(OK)

        first = CompileService(
            InstantPool(), deadline=1.0, journal=WriteAheadJournal(tmp_path)
        )
        first.compile(ServeRequest(ir=SRC))
        first.flush()

        service = CompileService(
            InstantPool(), deadline=1.0, journal=WriteAheadJournal(tmp_path)
        )
        front, teardown = _serve(service)
        try:
            summary = service.recover(block=True)
            assert summary["recovered_inflight"] == 0
            status, data = _call(front, "GET", "/healthz")
            assert status == 200 and data["status"] == "ok"
            # Counters carried across the restart.
            _status, stats = _call(front, "GET", "/stats")
            assert stats["requests"]["total"] == 1
        finally:
            teardown()
