"""GET /stats schema: the keys dashboards are built on must be stable.

Asserts the full top-level key set and the load-bearing sub-keys of
each section (including the triage section added with the self-healing
stack), and that the whole document is JSON-serialisable — a stats
regression should fail here, not in a scraper.
"""

import json

from repro.perf.memo import CompileCache
from repro.serve.quarantine import PassQuarantine
from repro.serve.service import CompileService, ServeRequest
from repro.serve.triage import FlightRecorder, TriageIndex, TriageWorker

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}

TOP_LEVEL_KEYS = {
    "uptime_seconds",
    "requests",
    "latency_ms",
    "levels_served",
    "failures",
    "cache",
    "dedupe",
    "breaker",
    "pool",
    "journal",
    "triage",
}


class FakePool:
    grace = 0.1

    def submit(self, request, deadline=None):
        return dict(OK)

    def stats(self):
        return {"workers": 1, "alive": 1}


def _service(tmp_path=None):
    recorder = None
    svc = CompileService(
        FakePool(),
        cache=CompileCache(max_entries=8),
        deadline=1.0,
        recorder=FlightRecorder(tmp_path / "triage") if tmp_path else None,
    )
    if tmp_path:
        recorder = svc.recorder
        svc.triage = TriageWorker(
            recorder,
            TriageIndex(tmp_path / "triage"),
            svc.quarantine,
            runner=lambda bundle: {"status": "no-repro"},
        )
    return svc


class TestStatsSchema:
    def test_top_level_keys_are_exactly_stable(self, tmp_path):
        svc = _service(tmp_path)
        svc.compile(ServeRequest(ir=SRC))
        stats = svc.stats()
        assert set(stats.keys()) == TOP_LEVEL_KEYS

    def test_section_subkeys(self, tmp_path):
        svc = _service(tmp_path)
        svc.compile(ServeRequest(ir=SRC))
        stats = svc.stats()
        assert {"total", "ok", "degraded", "shed", "rejected", "failed",
                "pending"} <= set(stats["requests"])
        assert {"p50", "p99", "count"} <= set(stats["latency_ms"])
        assert {"opens", "skips", "open_entries", "half_open",
                "tracked"} <= set(stats["breaker"])
        assert {"quarantine", "recorder", "index", "worker"} == set(
            stats["triage"]
        )
        assert {"active", "probing", "evidence", "threshold", "quarantines",
                "probes", "reinstated", "requarantined",
                "ignored"} <= set(stats["triage"]["quarantine"])
        assert {"recorded", "deduped", "dropped", "resolved", "corrupt",
                "errors", "forgotten",
                "pending"} <= set(stats["triage"]["recorder"])
        assert {"signatures", "occurrences", "by_pass",
                "save_errors"} <= set(stats["triage"]["index"])
        assert {"processed", "findings", "duplicates", "no_repro", "errors",
                "promoted", "promote_errors",
                "running"} <= set(stats["triage"]["worker"])

    def test_triage_sections_null_without_the_stack(self):
        # A service without recorder/worker still has the section (the
        # quarantine always exists), with explicit nulls — scrapers see
        # "not wired", never a missing key.
        svc = _service()
        stats = svc.stats()
        assert set(stats.keys()) == TOP_LEVEL_KEYS
        assert stats["triage"]["recorder"] is None
        assert stats["triage"]["index"] is None
        assert stats["triage"]["worker"] is None
        assert stats["triage"]["quarantine"]["active"] == []

    def test_stats_document_is_json_serialisable(self, tmp_path):
        svc = _service(tmp_path)
        svc.compile(ServeRequest(ir=SRC))
        svc.quarantine.record_implication("dce", "b1", "crash")
        round_tripped = json.loads(json.dumps(svc.stats()))
        assert round_tripped["triage"]["quarantine"]["evidence"] == {"dce": 1}

    def test_quarantined_passes_on_the_response_wire(self):
        svc = _service()
        wire = svc.compile(ServeRequest(ir=SRC)).to_dict()
        assert wire["quarantined_passes"] == []
