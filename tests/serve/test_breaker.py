"""CircuitBreaker: open/half-open transitions and ladder start index."""

from repro.serve.breaker import CircuitBreaker

FP = "f" * 32
LADDER = ["vliw", "base", "none"]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")
        assert breaker.opens == 1

    def test_keys_are_per_level_and_per_fingerprint(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")
        assert not breaker.is_open(FP, "base")
        assert not breaker.is_open("0" * 32, "vliw")

    def test_success_clears_failure_memory(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        breaker.record_success(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")

    def test_half_open_after_cooldown_reopens_on_one_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")
        clock.now = 11.0
        # Cooldown elapsed: one trial allowed...
        assert not breaker.is_open(FP, "vliw")
        # ...but the retained failure count re-opens on the next failure.
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")

    def test_start_index_skips_open_levels(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        assert breaker.start_index(FP, LADDER) == 0
        breaker.record_failure(FP, "vliw")
        assert breaker.start_index(FP, LADDER) == 1
        assert breaker.skips == 1

    def test_start_index_all_open_still_tries_safest(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        for level in LADDER:
            breaker.record_failure(FP, level)
        assert breaker.start_index(FP, LADDER) == len(LADDER) - 1

    def test_stats_shape(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        stats = breaker.stats()
        assert stats["opens"] == 1
        assert stats["open_entries"] == 1
        assert stats["tracked"] == 1
