"""CircuitBreaker: open/half-open transitions and ladder start index."""

from repro.serve.breaker import CircuitBreaker

FP = "f" * 32
LADDER = ["vliw", "base", "none"]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=2, cooldown=60.0, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")
        assert breaker.opens == 1

    def test_keys_are_per_level_and_per_fingerprint(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")
        assert not breaker.is_open(FP, "base")
        assert not breaker.is_open("0" * 32, "vliw")

    def test_success_clears_failure_memory(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        breaker.record_success(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")

    def test_half_open_after_cooldown_reopens_on_one_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")
        clock.now = 11.0
        # Cooldown elapsed: one trial allowed...
        assert not breaker.is_open(FP, "vliw")
        # ...but the retained failure count re-opens on the next failure.
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")

    def test_start_index_skips_open_levels(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        assert breaker.start_index(FP, LADDER) == 0
        breaker.record_failure(FP, "vliw")
        assert breaker.start_index(FP, LADDER) == 1
        assert breaker.skips == 1

    def test_start_index_all_open_still_tries_safest(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        for level in LADDER:
            breaker.record_failure(FP, level)
        assert breaker.start_index(FP, LADDER) == len(LADDER) - 1

    def test_stats_shape(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure(FP, "vliw")
        stats = breaker.stats()
        assert stats["opens"] == 1
        assert stats["open_entries"] == 1
        assert stats["tracked"] == 1
        assert stats["half_open"] == 0


class TestHalfOpenProbe:
    def _opened(self, clock, cooldown=10.0):
        breaker = CircuitBreaker(threshold=2, cooldown=cooldown, clock=clock)
        breaker.record_failure(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        return breaker

    def test_exactly_one_probe_admitted_after_cooldown(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 11.0
        assert not breaker.is_open(FP, "vliw")  # this caller is the probe
        assert breaker.is_open(FP, "vliw")  # everyone else keeps routing around
        assert breaker.is_open(FP, "vliw")

    def test_abandoned_probe_lease_expires(self):
        clock = FakeClock()
        breaker = self._opened(clock, cooldown=10.0)
        clock.now = 11.0
        assert not breaker.is_open(FP, "vliw")  # probe claimed...
        clock.now = 22.0  # ...and never reported back
        assert not breaker.is_open(FP, "vliw")  # next caller re-claims it

    def test_probe_success_closes_fully(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 11.0
        assert not breaker.is_open(FP, "vliw")
        breaker.record_success(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")
        assert breaker.stats()["half_open"] == 0

    def test_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 11.0
        assert not breaker.is_open(FP, "vliw")
        breaker.record_failure(FP, "vliw")
        assert breaker.is_open(FP, "vliw")

    def test_snapshot_of_half_open_pair_is_zero_remaining(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 11.0
        breaker.is_open(FP, "vliw")  # half-open, probe outstanding
        snap = breaker.snapshot()
        assert snap["open_remaining"][f"{FP}|vliw"] == 0.0

    def test_restore_expired_cooldown_lands_half_open_not_closed(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 50.0  # cooldown long expired, nobody probed yet
        snap = breaker.snapshot()

        restored = CircuitBreaker(threshold=2, cooldown=10.0, clock=FakeClock())
        restored.restore(snap)
        # Not closed: exactly one probe is admitted...
        assert not restored.is_open(FP, "vliw")
        assert restored.is_open(FP, "vliw")
        # ...and the retained failure count re-opens on one failure.
        restored2 = CircuitBreaker(threshold=2, cooldown=10.0, clock=FakeClock())
        restored2.restore(snap)
        restored2.record_failure(FP, "vliw")
        assert restored2.is_open(FP, "vliw")

    def test_forget_level_clears_only_that_level(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure(FP, "vliw")
        breaker.record_failure("0" * 32, "vliw")
        breaker.record_failure(FP, "base")
        assert breaker.forget_level("vliw") == 2
        assert not breaker.is_open(FP, "vliw")
        assert not breaker.is_open("0" * 32, "vliw")
        assert breaker.is_open(FP, "base")

    def test_forget_level_drops_failure_memory_and_leases(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 11.0
        breaker.is_open(FP, "vliw")  # half-open, probe lease outstanding
        assert breaker.forget_level("vliw") == 1
        assert breaker.stats()["half_open"] == 0
        # Fully forgotten, not half-open: a single new failure stays
        # below the threshold instead of re-opening on old counts.
        breaker.record_failure(FP, "vliw")
        assert not breaker.is_open(FP, "vliw")

    def test_restore_live_cooldown_stays_open(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.now = 4.0
        snap = breaker.snapshot()
        fresh_clock = FakeClock()
        restored = CircuitBreaker(threshold=2, cooldown=10.0, clock=fresh_clock)
        restored.restore(snap)
        assert restored.is_open(FP, "vliw")
        fresh_clock.now = 7.0  # 6s remained at snapshot; now expired
        assert not restored.is_open(FP, "vliw")
