"""Tests for the fault-contained compile service (repro.serve)."""
