"""WorkerPool against real worker processes: crash, hang, respawn.

These tests cross the process boundary on purpose — they are the proof
that a worker dying or hanging cannot take the supervisor with it.
Deadlines are kept short so the whole file stays in CI budget.
"""

import time

import pytest

from repro.serve.pool import WorkerPool

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""


@pytest.fixture()
def pool():
    with WorkerPool(workers=2, deadline=5.0, grace=1.0,
                    backoff_base=0.01, backoff_cap=0.1) as p:
        yield p


def _request(**overrides):
    request = {"ir": SRC, "level": "vliw", "attempt": 0, "options": {}}
    request.update(overrides)
    return request


class TestHappyPath:
    def test_compile_round_trip(self, pool):
        answer = pool.submit(_request())
        assert answer["status"] == "ok"
        assert "func main" in answer["ir"]
        assert answer["static_instructions"] > 0

    def test_invalid_ir_is_a_reject_not_a_crash(self, pool):
        answer = pool.submit(_request(ir="garbage"))
        assert answer["status"] == "reject"
        assert pool.crashes == 0


class TestCrashContainment:
    def test_worker_crash_is_contained_and_respawned(self, pool):
        answer = pool.submit(
            _request(inject={"kind": "worker-crash"})
        )
        assert answer["status"] == "crash"
        assert "died" in answer["detail"] or "pipe" in answer["detail"]
        assert pool.crashes == 1
        # The next request finds a live worker and succeeds.
        healed = pool.submit(_request())
        assert healed["status"] == "ok"
        # Respawn is lazy (acquire-time, after backoff): keep submitting
        # until the supervisor has brought the dead slot back.
        for _ in range(100):
            if pool.stats()["respawns"] >= 1:
                break
            time.sleep(0.02)
            pool.submit(_request())
        assert pool.stats()["respawns"] >= 1
        assert pool.stats()["alive"] == 2

    def test_soft_deadline_in_worker_answers_timeout(self, pool):
        # Sleep shorter than the hard kill but past the soft alarm: the
        # worker survives and answers "timeout" itself.
        answer = pool.submit(
            _request(inject={"kind": "soft-hang", "seconds": 1.0}),
            deadline=0.3,
        )
        assert answer["status"] == "timeout"
        # Soft timeouts do not kill the worker.
        assert pool.stats()["alive"] == 2

    def test_hard_hang_is_killed_at_the_deadline(self, pool):
        # "hang" sleeps before the alarm is armed, so only the
        # supervisor's hard deadline can save the request.
        answer = pool.submit(
            _request(inject={"kind": "hang", "seconds": 30.0}),
            deadline=0.3,
        )
        assert answer["status"] == "timeout"
        assert "killed" in answer["detail"]
        assert pool.timeouts == 1
        healed = pool.submit(_request())
        assert healed["status"] == "ok"


class TestBackoff:
    def test_consecutive_crashes_back_off_exponentially(self):
        with WorkerPool(workers=1, deadline=5.0, backoff_base=0.05,
                        backoff_cap=10.0) as pool:
            handle = pool._handles[0]
            pool.submit(_request(inject={"kind": "worker-crash"}))
            assert handle.failures == 1
            first_delay = handle.respawn_at
            pool.submit(_request(inject={"kind": "worker-crash"}))
            assert handle.failures == 2
            # The second window ends later than the first by at least
            # the doubled base delay.
            assert handle.respawn_at > first_delay

    def test_success_resets_the_backoff(self, pool):
        pool.submit(_request(inject={"kind": "worker-crash"}))
        pool.submit(_request())  # success on some worker resets it
        assert all(h.failures == 0 for h in pool._handles if h.alive)


class TestRespawnJitter:
    @staticmethod
    def _delays(seed, slots=4):
        """Backoff delays the first failure of each slot would get."""
        pool = WorkerPool(workers=slots, start=False, backoff_base=1.0,
                          backoff_cap=100.0, backoff_jitter=0.5,
                          jitter_seed=seed)
        delays = []
        for handle in pool._handles:
            pool._fail(handle, "crash")
            delays.append(handle.respawn_at - time.monotonic())
        return delays

    def test_jitter_stays_within_the_multiplicative_band(self):
        for delay in self._delays(seed=1):
            assert 1.0 <= delay <= 1.5 + 0.01  # base .. base*(1+jitter)

    def test_slots_get_decorrelated_delays(self):
        delays = self._delays(seed=1)
        assert len({round(d, 3) for d in delays}) == len(delays)

    def test_jitter_is_seeded_and_reproducible(self):
        first = self._delays(seed=7)
        second = self._delays(seed=7)
        other = self._delays(seed=8)
        assert all(abs(a - b) < 0.05 for a, b in zip(first, second))
        assert any(abs(a - b) > 0.01 for a, b in zip(first, other))

    def test_zero_jitter_is_pure_exponential(self):
        pool = WorkerPool(workers=1, start=False, backoff_base=0.5,
                          backoff_cap=100.0, backoff_jitter=0.0)
        handle = pool._handles[0]
        pool._fail(handle, "crash")
        first = handle.respawn_at - time.monotonic()
        pool._fail(handle, "crash")
        second = handle.respawn_at - time.monotonic()
        assert abs(first - 0.5) < 0.01
        assert abs(second - 1.0) < 0.01


class TestLifecycle:
    def test_stop_is_idempotent_and_kills_workers(self):
        pool = WorkerPool(workers=2, deadline=5.0)
        procs = [h.proc for h in pool._handles]
        pool.stop()
        pool.stop()
        for proc in procs:
            proc.join(timeout=2.0)
            assert not proc.is_alive()

    def test_submit_after_stop_raises(self):
        pool = WorkerPool(workers=1, deadline=5.0)
        pool.stop()
        with pytest.raises(RuntimeError):
            pool.submit(_request())
