"""Flight recorder, triage index, triage worker and corpus promotion.

The replay/bisect/reduce pipeline itself (``triage_bundle``) is tested
against a real injected pass fault; the worker orchestration is tested
with a scripted runner so its policy (dedupe, quarantine feeding,
promotion, forget) is exercised without paying a replay per case.
"""

from repro.fuzz.corpus import load_cases
from repro.ir.parser import parse_module
from repro.perf.fingerprint import fingerprint_module
from repro.serve.quarantine import PassQuarantine
from repro.serve.triage import (
    CrashBundle,
    FlightRecorder,
    IsolatedTriageRunner,
    TriageIndex,
    TriageWorker,
    promote_case,
    triage_bundle,
)

PASS = "limited-combining"
PLAN = f"{PASS}:raise:0"  # fire on every activation

SRC = """
func main(r3):
    AI r3, r3, 5
    MUL r4, r3, r3
    AI r3, r4, 1
    RET
"""

FP = fingerprint_module(parse_module(SRC))


def _bundle(fp=FP, ir=SRC, kind="crash", options=None):
    return {
        "bundle_id": f"{fp[:12]}-vliw-{kind}",
        "fingerprint": fp,
        "level": "vliw",
        "kind": kind,
        "ir": ir,
        "options": {"fault_plan": PLAN} if options is None else options,
        "seed": 0,
    }


class TestFlightRecorder:
    def test_record_load_roundtrip(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        bundle_id = recorder.record(
            FP, "vliw", "crash", SRC,
            options={"fault_plan": PLAN}, detail="boom", attempts=[["vliw", "crash"]],
        )
        assert bundle_id == f"{FP[:12]}-vliw-crash"
        [path] = recorder.pending()
        bundle = recorder.load(path)
        assert bundle.ir == SRC
        assert bundle.options == {"fault_plan": PLAN}
        assert bundle.kind == "crash"
        assert bundle.env["python"]

    def test_same_failure_is_deduplicated(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        assert recorder.record(FP, "vliw", "crash", SRC) is not None
        assert recorder.record(FP, "vliw", "crash", SRC) is None
        assert recorder.deduped == 1
        # A different kind or level is a different bundle.
        assert recorder.record(FP, "vliw", "timeout", SRC) is not None
        assert recorder.record(FP, "base", "crash", SRC) is not None

    def test_pending_set_is_bounded(self, tmp_path):
        recorder = FlightRecorder(tmp_path, max_pending=2)
        recorder.record("a" * 32, "vliw", "crash", SRC)
        recorder.record("b" * 32, "vliw", "crash", SRC)
        assert recorder.record("c" * 32, "vliw", "crash", SRC) is None
        assert recorder.dropped == 1

    def test_resolved_bundle_stays_deduped_until_forgotten(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        bundle_id = recorder.record(FP, "vliw", "crash", SRC)
        [path] = recorder.pending()
        recorder.resolve(path)
        assert recorder.pending() == []
        assert recorder.record(FP, "vliw", "crash", SRC) is None  # still deduped
        assert recorder.forget([bundle_id]) == 1
        assert recorder.record(FP, "vliw", "crash", SRC) is not None

    def test_corrupt_bundle_is_shunted_aside(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        recorder.record(FP, "vliw", "crash", SRC)
        [path] = recorder.pending()
        path.write_bytes(b"deadbeef not a record\n")
        assert recorder.load(path) is None
        assert recorder.corrupt == 1
        assert recorder.pending() == []  # renamed .corrupt


class TestTriageIndex:
    def test_dedupe_by_signature_and_persistence(self, tmp_path):
        index = TriageIndex(tmp_path)
        finding = {"guilty": PASS, "kind": "crash", "reduced_fp": "ab" * 16}
        sig, new = index.add(finding, source="bundle-1")
        assert new
        sig2, new2 = index.add(finding, source="bundle-2")
        assert sig2 == sig and not new2

        reloaded = TriageIndex(tmp_path)
        assert reloaded.summary()["signatures"] == 1
        assert reloaded.summary()["occurrences"] == 2
        assert reloaded.summary()["by_pass"] == {PASS: 1}
        assert sorted(reloaded.sources_for(PASS)) == ["bundle-1", "bundle-2"]


class TestTriageBundle:
    def test_injected_fault_is_bisected_and_reduced(self):
        result = triage_bundle(
            _bundle(), max_steps=10_000, argsets=1, reduce_rounds=1
        )
        assert result["status"] == "finding"
        assert result["kind"] == "crash"
        assert result["guilty"] == PASS
        assert result["injected"]
        assert result["instructions_after"] <= result["instructions_before"]
        parse_module(result["reduced_ir"])  # reduced module is valid IR

    def test_clean_bundle_is_no_repro(self):
        result = triage_bundle(
            _bundle(options={}), max_steps=10_000, argsets=1, reduce_rounds=1
        )
        assert result["status"] == "no-repro"

    def test_isolated_runner_round_trips(self):
        runner = IsolatedTriageRunner(
            deadline=120.0, max_steps=10_000, argsets=1, reduce_rounds=1
        )
        result = runner(_bundle())
        assert result["status"] == "finding"
        assert result["guilty"] == PASS

    def test_isolated_runner_contains_replay_errors(self):
        runner = IsolatedTriageRunner(
            deadline=30.0, max_steps=10_000, argsets=1, reduce_rounds=1
        )
        result = runner(_bundle(ir="this is not IR"))
        assert result["status"] == "triage-error"


class FakeRunner:
    """Scripted triage results keyed by bundle fingerprint."""

    def __init__(self, result):
        self.result = result
        self.calls = []

    def __call__(self, bundle):
        self.calls.append(bundle)
        return dict(self.result)


FINDING = {
    "status": "finding",
    "kind": "crash",
    "guilty": PASS,
    "config": "vliw:u2:swp",
    "detail": "InjectedFault: boom",
    "reduced_ir": SRC,
    "reduced_fp": FP,
    "injected": True,
}


def _worker(tmp_path, result=FINDING, threshold=2, promote_dir=None,
            on_finding=None, on_quarantine=None):
    recorder = FlightRecorder(tmp_path / "triage")
    index = TriageIndex(tmp_path / "triage")
    quarantine = PassQuarantine(threshold=threshold)
    worker = TriageWorker(
        recorder, index, quarantine,
        runner=FakeRunner(result),
        promote_dir=promote_dir,
        on_finding=on_finding,
        on_quarantine=on_quarantine,
    )
    return worker, recorder, index, quarantine


class TestTriageWorker:
    def test_distinct_findings_quarantine_the_pass(self, tmp_path):
        worker, recorder, index, quarantine = _worker(tmp_path)
        recorder.record("a" * 32, "vliw", "crash", SRC)
        recorder.record("b" * 32, "vliw", "crash", SRC)
        assert worker.process_once() == 2
        assert quarantine.active() == (PASS,)
        assert recorder.pending() == []  # resolved
        assert worker.findings == 1 and worker.duplicates == 1
        assert index.summary()["occurrences"] == 2

    def test_one_module_alone_cannot_quarantine(self, tmp_path):
        worker, recorder, _index, quarantine = _worker(tmp_path)
        recorder.record("a" * 32, "vliw", "crash", SRC)
        worker.process_once()
        assert quarantine.active() == ()

    def test_no_repro_feeds_nothing(self, tmp_path):
        worker, recorder, index, quarantine = _worker(
            tmp_path, result={"status": "no-repro"}, threshold=1
        )
        recorder.record("a" * 32, "vliw", "crash", SRC)
        worker.process_once()
        assert quarantine.active() == ()
        assert worker.no_repro == 1
        assert index.summary()["signatures"] == 0

    def test_on_finding_callback_fires(self, tmp_path):
        fired = []
        worker, recorder, _i, _q = _worker(
            tmp_path, on_finding=lambda: fired.append(1)
        )
        recorder.record("a" * 32, "vliw", "crash", SRC)
        worker.process_once()
        assert fired == [1]

    def test_on_quarantine_fires_only_on_activation(self, tmp_path):
        quarantined = []
        worker, recorder, _i, _q = _worker(
            tmp_path, on_quarantine=quarantined.append
        )
        recorder.record("a" * 32, "vliw", "crash", SRC)
        worker.process_once()
        assert quarantined == []  # one implication: below threshold
        recorder.record("b" * 32, "vliw", "crash", SRC)
        recorder.record("c" * 32, "vliw", "crash", SRC)
        worker.process_once()
        assert quarantined == [PASS]  # activation once, not per implication

    def test_forget_pass_reenables_detection(self, tmp_path):
        worker, recorder, _index, quarantine = _worker(tmp_path)
        recorder.record("a" * 32, "vliw", "crash", SRC)
        worker.process_once()
        assert recorder.record("a" * 32, "vliw", "crash", SRC) is None
        worker.forget_pass(PASS)
        assert recorder.record("a" * 32, "vliw", "crash", SRC) is not None

    def test_new_findings_promote_to_corpus(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        worker, recorder, _i, _q = _worker(tmp_path, promote_dir=corpus_dir)
        recorder.record("a" * 32, "vliw", "crash", SRC)
        recorder.record("b" * 32, "vliw", "crash", SRC)  # duplicate signature
        worker.process_once()
        cases = load_cases(corpus_dir)
        assert len(cases) == 1  # deduped: one case per signature
        assert worker.promoted == 1


class TestPromotion:
    def test_promoted_case_replays_under_the_corpus_test(self, tmp_path):
        bundle = CrashBundle.from_record(_bundle())
        path = promote_case(FINDING, bundle, tmp_path)
        [case] = load_cases(tmp_path)
        assert case.path == path
        # Injected fault: the clean config must stay clean -> "fixed".
        assert case.status == "fixed"
        assert case.guilty == PASS
        assert case.kind == "crash"
        assert case.extra["origin"] == "serve-triage"
        assert case.extra["bundle"] == bundle.bundle_id
        parse_module(case.source)  # the corpus file is directly parseable

    def test_real_bug_promotes_as_xfail(self, tmp_path):
        bundle = CrashBundle.from_record(_bundle(options={}))
        promote_case(dict(FINDING, injected=False), bundle, tmp_path)
        [case] = load_cases(tmp_path)
        assert case.status == "xfail"
