"""PassQuarantine: evidence thresholds, probes, persistence — and the
service integration (ablated compiles, probe accounting, cache keying)
against a scripted fake pool."""

from repro.perf.memo import CompileCache
from repro.serve.breaker import CircuitBreaker
from repro.serve.quarantine import PassQuarantine
from repro.serve.service import CompileService, ServeRequest

PASS = "limited-combining"

SRC = """
func main(r3):
    AI r3, r3, 5
    RET
"""

OK = {"status": "ok", "ir": "func main(r3):\n    RET\n", "static_instructions": 2}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def quarantine(clock, **kwargs):
    kwargs.setdefault("threshold", 2)
    kwargs.setdefault("cooldown", 100.0)
    kwargs.setdefault("probe_timeout", 10.0)
    return PassQuarantine(clock=clock, **kwargs)


class TestEvidence:
    def test_distinct_evidence_reaches_threshold(self):
        q = quarantine(FakeClock())
        assert not q.record_implication(PASS, "bundle-a", "crash")
        assert q.active() == ()
        assert q.record_implication(PASS, "bundle-b", "crash")
        assert q.active() == (PASS,)
        assert q.quarantines == 1

    def test_duplicate_evidence_does_not_count_twice(self):
        q = quarantine(FakeClock())
        q.record_implication(PASS, "bundle-a", "crash")
        assert not q.record_implication(PASS, "bundle-a", "crash")
        assert q.active() == ()
        assert q.evidence_counts() == {PASS: 1}

    def test_unquarantinable_pass_is_ignored(self):
        q = quarantine(FakeClock(), threshold=1)
        assert not q.record_implication("linkage-lowering", "b1", "crash")
        assert not q.record_implication("no-such-pass", "b2", "crash")
        assert q.active() == ()
        assert q.ignored == 2

    def test_evidence_while_quarantined_does_not_requarantine(self):
        q = quarantine(FakeClock())
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        assert not q.record_implication(PASS, "c", "crash")
        assert q.quarantines == 1


class TestPlanAndProbe:
    def test_plan_ablates_during_cooldown(self):
        clock = FakeClock()
        q = quarantine(clock)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        disabled, probes = q.plan()
        assert disabled == (PASS,) and probes == ()

    def test_cooldown_elapsed_admits_exactly_one_probe(self):
        clock = FakeClock()
        q = quarantine(clock)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        clock.now = 101.0
        disabled, probes = q.plan()
        assert probes == (PASS,) and disabled == ()
        # A concurrent request keeps ablating while the probe is out.
        disabled2, probes2 = q.plan()
        assert probes2 == () and disabled2 == (PASS,)

    def test_probe_success_reinstates_and_clears_evidence(self):
        clock = FakeClock()
        q = quarantine(clock)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        clock.now = 101.0
        q.plan()
        assert q.probe_result(PASS, True) == "reinstated"
        assert q.active() == ()
        assert q.evidence_counts() == {}
        # Fresh evidence is needed to quarantine again.
        assert not q.record_implication(PASS, "a", "crash")

    def test_probe_failure_requarantines_for_another_cooldown(self):
        clock = FakeClock()
        q = quarantine(clock)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        clock.now = 101.0
        q.plan()
        assert q.probe_result(PASS, False) == "requarantined"
        disabled, probes = q.plan()
        assert disabled == (PASS,) and probes == ()
        clock.now = 202.0
        _disabled, probes = q.plan()
        assert probes == (PASS,)

    def test_stale_probe_report_is_ignored(self):
        q = quarantine(FakeClock())
        assert q.probe_result(PASS, True) is None

    def test_abandoned_probe_lease_expires_and_is_reclaimed(self):
        clock = FakeClock()
        q = quarantine(clock, probe_timeout=10.0)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        clock.now = 101.0
        _d, probes = q.plan()
        assert probes == (PASS,)
        clock.now = 105.0  # lease still live
        _d, probes = q.plan()
        assert probes == ()
        clock.now = 112.0  # lease expired: the probe died with its request
        _d, probes = q.plan()
        assert probes == (PASS,)

    def test_abandon_probe_reopens_immediately(self):
        clock = FakeClock()
        q = quarantine(clock)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        clock.now = 101.0
        q.plan()
        q.abandon_probe(PASS)
        _d, probes = q.plan()
        assert probes == (PASS,)

    def test_multi_success_probe_protocol(self):
        clock = FakeClock()
        q = quarantine(clock, probe_successes=2)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        clock.now = 101.0
        q.plan()
        assert q.probe_result(PASS, True) is None  # streak 1 of 2
        _d, probes = q.plan()  # immediately re-probeable
        assert probes == (PASS,)
        assert q.probe_result(PASS, True) == "reinstated"


class TestPersistence:
    def _quarantined(self, clock):
        q = quarantine(clock)
        q.record_implication(PASS, "a", "crash")
        q.record_implication(PASS, "b", "crash")
        return q

    def test_snapshot_restore_carries_remaining_cooldown(self):
        clock = FakeClock()
        q = self._quarantined(clock)
        clock.now = 40.0
        snap = q.snapshot()
        assert 59.0 <= snap["cooldown_remaining"][PASS] <= 60.0

        clock2 = FakeClock()
        q2 = quarantine(clock2)
        q2.restore(snap)
        _d, probes = q2.plan()
        assert _d == (PASS,) and probes == ()
        clock2.now = 61.0
        _d, probes = q2.plan()
        assert probes == (PASS,)
        # Evidence survived the round trip.
        assert q2.evidence_counts() == {PASS: 2}

    def test_expired_cooldown_restores_half_open_not_closed(self):
        clock = FakeClock()
        q = self._quarantined(clock)
        clock.now = 150.0  # cooldown long expired
        snap = q.snapshot()
        q2 = quarantine(FakeClock())
        q2.restore(snap)
        assert q2.active() == (PASS,)  # never silently closed
        disabled, probes = q2.plan()
        assert probes == (PASS,) and disabled == ()

    def test_in_flight_probe_restores_as_probe_available(self):
        clock = FakeClock()
        q = self._quarantined(clock)
        clock.now = 101.0
        q.plan()  # probe claimed, never reported (process died)
        snap = q.snapshot()
        q2 = quarantine(FakeClock())
        q2.restore(snap)
        _d, probes = q2.plan()
        assert probes == (PASS,)

    def test_restore_empty_snapshot_is_a_noop(self):
        q = self._quarantined(FakeClock())
        q.restore({})
        q.restore(None)
        assert q.active() == (PASS,)

    def test_stats_shape(self):
        q = self._quarantined(FakeClock())
        stats = q.stats()
        for key in ("active", "probing", "evidence", "threshold",
                    "quarantines", "probes", "reinstated",
                    "requarantined", "ignored"):
            assert key in stats
        assert stats["active"] == [PASS]


# -- service integration ------------------------------------------------------


class FakePool:
    grace = 0.1

    def __init__(self, handler):
        self.handler = handler
        self.calls = []

    def submit(self, request, deadline=None):
        self.calls.append(request)
        return self.handler(request)

    def stats(self):
        return {"workers": 1, "alive": 1}


def service(pool, clock=None, **kwargs):
    kwargs.setdefault("cache", CompileCache(max_entries=8))
    kwargs.setdefault("deadline", 1.0)
    kwargs.setdefault(
        "quarantine",
        PassQuarantine(threshold=2, cooldown=100.0,
                       clock=clock or FakeClock()),
    )
    return CompileService(pool, **kwargs)


def _quarantine_pass(svc, name=PASS):
    svc.quarantine.record_implication(name, "bundle-a", "crash")
    svc.quarantine.record_implication(name, "bundle-b", "crash")


class TestServiceAblation:
    def test_quarantined_pass_is_ablated_with_diff_check(self):
        pool = FakePool(lambda _req: dict(OK, rollbacks=0))
        svc = service(pool)
        _quarantine_pass(svc)
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "ok"
        assert response.level_served == "vliw"
        assert response.quarantined_passes == [PASS]
        options = pool.calls[0]["options"]
        assert options["disable"] == [PASS]
        assert options["resilience"] == "rollback"

    def test_ablation_merges_with_request_disable(self):
        pool = FakePool(lambda _req: dict(OK, rollbacks=0))
        svc = service(pool)
        _quarantine_pass(svc)
        svc.compile(ServeRequest(
            ir=SRC, level="vliw", options={"disable": ["bb-expansion"]}
        ))
        assert pool.calls[0]["options"]["disable"] == [
            "bb-expansion", PASS,
        ]

    def test_request_resilience_choice_is_respected(self):
        pool = FakePool(lambda _req: dict(OK, rollbacks=0))
        svc = service(pool)
        _quarantine_pass(svc)
        svc.compile(ServeRequest(
            ir=SRC, level="vliw", options={"resilience": "strict"}
        ))
        assert pool.calls[0]["options"]["resilience"] == "strict"

    def test_base_requests_are_untouched(self):
        pool = FakePool(lambda _req: dict(OK))
        svc = service(pool)
        _quarantine_pass(svc)
        svc.compile(ServeRequest(ir=SRC, level="base"))
        assert "disable" not in pool.calls[0]["options"]

    def test_ablated_results_keyed_apart_from_clean_ones(self):
        pool = FakePool(lambda _req: dict(OK, rollbacks=0))
        clock = FakeClock()
        svc = service(pool, clock=clock)
        cold = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert not cold.cached and cold.quarantined_passes == []
        _quarantine_pass(svc)
        ablated = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert not ablated.cached  # different key: not the clean result
        assert ablated.quarantined_passes == [PASS]
        warm = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert warm.cached and warm.quarantined_passes == [PASS]

    def test_probe_success_reinstates(self):
        pool = FakePool(lambda _req: dict(OK, rollbacks=0))
        clock = FakeClock()
        svc = service(pool, clock=clock)
        _quarantine_pass(svc)
        clock.now = 101.0
        probe = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert probe.status == "ok"
        assert probe.quarantined_passes == []  # probe ran the full pipeline
        assert svc.quarantine.active() == ()
        assert svc.quarantine.reinstated == 1
        clean = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert clean.quarantined_passes == []

    def test_probe_rollback_requarantines(self):
        # The guarded pipeline rolled the probed pass back: compile is
        # "ok" (the served binary is clean) but the pass is still bad.
        pool = FakePool(lambda _req: dict(OK, rollbacks=1))
        clock = FakeClock()
        svc = service(pool, clock=clock)
        _quarantine_pass(svc)
        clock.now = 101.0
        probe = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert probe.status == "ok"
        assert svc.quarantine.active() == (PASS,)
        assert svc.quarantine.requarantined == 1
        # A rolled-back result must not be cached as full quality.
        again = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert not again.cached

    def test_probe_compile_failure_requarantines(self):
        clock = FakeClock()
        seen = {"n": 0}

        def handler(request):
            if request["level"] == "vliw":
                seen["n"] += 1
                return {"status": "error", "detail": "still broken"}
            return dict(OK)

        svc = service(FakePool(handler), clock=clock)
        _quarantine_pass(svc)
        clock.now = 101.0
        response = svc.compile(ServeRequest(ir=SRC, level="vliw"))
        assert response.status == "ok" and response.level_served == "base"
        assert svc.quarantine.active() == (PASS,)
        assert svc.quarantine.requarantined == 1


class TestBreakerHealing:
    """Quarantine activation retires the breaker's stale vliw memory."""

    def _failing_pool(self):
        def handler(request):
            options = request.get("options") or {}
            disabled = options.get("disable") or []
            if request["level"] == "vliw" and PASS not in disabled:
                return {"status": "error", "detail": "InjectedFault: boom"}
            return dict(OK, rollbacks=0)

        return FakePool(handler)

    def test_pass_quarantined_reopens_the_vliw_level(self):
        svc = service(
            self._failing_pool(),
            breaker=CircuitBreaker(threshold=2, cooldown=100.0,
                                   clock=FakeClock()),
        )
        # The module fails at vliw until its per-fingerprint breaker
        # opens; every request degrades to base.
        for nonce in range(3):
            response = svc.compile(ServeRequest(
                ir=SRC, level="vliw", options={"nonce": nonce}
            ))
            assert response.status == "ok"
            assert response.level_served == "base"
        assert svc.breaker.stats()["open_entries"] == 1
        # Triage names the guilty pass; the healing hook clears the
        # stale memory so the *very next* request retries vliw — now
        # ablated — instead of waiting out the breaker cooldown.
        _quarantine_pass(svc)
        svc.pass_quarantined(PASS)
        response = svc.compile(ServeRequest(
            ir=SRC, level="vliw", options={"nonce": 99}
        ))
        assert response.level_served == "vliw"
        assert response.quarantined_passes == [PASS]

    def test_without_healing_the_breaker_keeps_degrading(self):
        # Contrast case: same scenario minus the hook — the breaker
        # still routes around vliw even though the quarantine would fix
        # the compile (this is the regression the hook exists for).
        svc = service(
            self._failing_pool(),
            breaker=CircuitBreaker(threshold=2, cooldown=100.0,
                                   clock=FakeClock()),
        )
        for nonce in range(2):
            svc.compile(ServeRequest(
                ir=SRC, level="vliw", options={"nonce": nonce}
            ))
        _quarantine_pass(svc)
        response = svc.compile(ServeRequest(
            ir=SRC, level="vliw", options={"nonce": 99}
        ))
        assert response.level_served == "base"
