"""SnapshotStore: copy-on-write snapshots restore exhaustively."""

from repro.ir import format_module
from repro.ir.parser import parse_module
from repro.perf.snapshot import SnapshotStore

SRC = """
data tab: size=8 init=[1, 2]

func f(r3):
    AI r3, r3, 1
    RET

func g(r3):
    AI r3, r3, 2
    RET
"""


def _fresh():
    module = parse_module(SRC)
    store = SnapshotStore()
    store.prime(module)
    return module, store


class TestCowRoundTrip:
    def test_mutation_rolls_back_and_identity_survives(self):
        module, store = _fresh()
        pristine = format_module(module)
        f_obj = module.functions["f"]
        snap = store.take_cow(module)
        f_obj.blocks[0].instrs[0].imm = 99
        assert store.refresh(module, {"f"}) == {"f"}
        store.restore_cow(module, snap)
        assert format_module(module) == pristine
        # References into the module stay valid across a rollback.
        assert module.functions["f"] is f_obj

    def test_deleted_function_is_reinstated(self):
        module, store = _fresh()
        pristine = format_module(module)
        snap = store.take_cow(module)
        del module.functions["g"]
        store.refresh(module, {"g"})
        store.restore_cow(module, snap)
        assert format_module(module) == pristine
        assert list(module.functions) == ["f", "g"]

    def test_added_function_is_dropped(self):
        module, store = _fresh()
        pristine = format_module(module)
        snap = store.take_cow(module)
        extra = parse_module(SRC).functions["f"]
        module.functions["h"] = extra
        store.refresh(module, {"h"})
        store.restore_cow(module, snap)
        assert format_module(module) == pristine

    def test_module_extras_and_data_restore(self):
        module, store = _fresh()
        snap = store.take_cow(module)
        module.name = "evil"
        module.__dict__["invented"] = True
        module.data["tab"].init[0] = 77
        store.restore_cow(module, snap)
        assert module.name != "evil"
        assert "invented" not in module.__dict__
        assert module.data["tab"].init[0] == 1

    def test_preserve_allows_double_restore(self):
        # The retry policy restores, re-runs, and may restore again.
        module, store = _fresh()
        pristine = format_module(module)
        snap = store.take_cow(module)
        module.functions["f"].blocks[0].instrs[0].imm = 5
        store.refresh(module, {"f"})
        store.restore_cow(module, snap, preserve=True)
        module.functions["f"].blocks[0].instrs[0].imm = 7
        store.refresh(module, {"f"})
        store.restore_cow(module, snap, preserve=True)
        assert format_module(module) == pristine


class TestCowEconomy:
    def test_unchanged_functions_are_reused_not_recloned(self):
        module, store = _fresh()
        store.take_cow(module)
        cloned_first = store.counters["snapshot.fn_cloned"]
        assert cloned_first == 2
        # Nothing changed: a second snapshot reuses both cached clones.
        store.take_cow(module)
        assert store.counters["snapshot.fn_cloned"] == cloned_first
        assert store.counters["snapshot.fn_reused"] == 2

    def test_only_the_stale_function_is_recloned(self):
        module, store = _fresh()
        store.take_cow(module)
        module.functions["f"].blocks[0].instrs[0].imm = 42
        store.refresh(module, {"f"})
        store.take_cow(module)
        assert store.counters["snapshot.fn_cloned"] == 3  # 2 prime + 1 stale
        assert store.counters["snapshot.fn_reused"] == 1

    def test_refresh_reports_only_real_changes(self):
        module, store = _fresh()
        # Reported-but-identical: refresh must say nothing changed.
        assert store.refresh(module, {"f"}) == set()
        assert store.refresh(module, None) == set()
