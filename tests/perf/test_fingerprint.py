"""Fingerprints are content hashes: identity-free, attr-complete."""

from repro.ir.parser import parse_module
from repro.perf.fingerprint import (
    fingerprint_function,
    fingerprint_module,
    module_fingerprints,
)

SRC = """
data tab: size=8 init=[1, 2]

func f(r3):
    AI r3, r3, 1
    RET

func g(r3):
    LA r4, tab
    L r5, 0(r4)
    A r3, r3, r5
    RET
"""


class TestFunctionFingerprint:
    def test_reparse_is_stable(self):
        # Two parses allocate fresh instruction uids and label counters;
        # the fingerprint must not see any of that.
        a = parse_module(SRC)
        b = parse_module(SRC)
        for name in a.functions:
            assert fingerprint_function(a.functions[name]) == fingerprint_function(
                b.functions[name]
            )

    def test_clone_is_stable(self):
        module = parse_module(SRC)
        for fn in module.functions.values():
            assert fingerprint_function(fn.clone()) == fingerprint_function(fn)

    def test_distinct_functions_differ(self):
        module = parse_module(SRC)
        assert fingerprint_function(module.functions["f"]) != fingerprint_function(
            module.functions["g"]
        )

    def test_immediate_change_moves_the_hash(self):
        module = parse_module(SRC)
        fn = module.functions["f"]
        before = fingerprint_function(fn)
        fn.blocks[0].instrs[0].imm = 2
        assert fingerprint_function(fn) != before

    def test_any_attr_is_significant(self):
        # The printer round-trips only !spec; the fingerprint must cover
        # every attr (save/restore/volatile pinning changes semantics).
        module = parse_module(SRC)
        fn = module.functions["f"]
        before = fingerprint_function(fn)
        fn.blocks[0].instrs[0].attrs["volatile"] = True
        assert fingerprint_function(fn) != before

    def test_label_rename_moves_the_hash(self):
        module = parse_module(SRC)
        fn = module.functions["g"]
        before = fingerprint_function(fn)
        fn.blocks[0].label = "renamed"
        assert fingerprint_function(fn) != before


class TestModuleFingerprint:
    def test_reparse_is_stable(self):
        assert fingerprint_module(parse_module(SRC)) == fingerprint_module(
            parse_module(SRC)
        )

    def test_clone_is_stable(self):
        module = parse_module(SRC)
        assert fingerprint_module(module.clone()) == fingerprint_module(module)

    def test_data_objects_are_significant(self):
        module = parse_module(SRC)
        before = fingerprint_module(module)
        module.data["tab"].init[0] = 99
        assert fingerprint_module(module) != before

    def test_function_change_is_significant(self):
        module = parse_module(SRC)
        before = fingerprint_module(module)
        module.functions["f"].blocks[0].instrs[0].imm = 7
        assert fingerprint_module(module) != before

    def test_per_function_map(self):
        module = parse_module(SRC)
        fps = module_fingerprints(module)
        assert set(fps) == {"f", "g"}
        assert fps["f"] == fingerprint_function(module.functions["f"])
