"""Whole-compile memoization: content-keyed hits, changed content misses."""

from repro.evaluate import measure
from repro.ir.parser import parse_module
from repro.perf.memo import CompileCache, config_key
from repro.workloads import suite

SRC = """
func f(r3):
    AI r3, r3, 1
    RET
"""


def _workload(name: str):
    return next(wl for wl in suite() if wl.name == name)


class TestConfigKey:
    def test_kwarg_order_is_canonical(self):
        assert config_key("vliw", a=1, b=2) == config_key("vliw", b=2, a=1)

    def test_none_values_match_omitted(self):
        # Passing the default None explicitly must not split the cache.
        assert config_key("vliw", resilience=None) == config_key("vliw")

    def test_level_and_values_are_significant(self):
        assert config_key("base") != config_key("vliw")
        assert config_key("vliw", jobs=1) != config_key("vliw", jobs=4)


class TestCompileCache:
    def test_content_keyed_hit(self):
        cache = CompileCache()
        cache.store(parse_module(SRC), "k", "result")
        # A different module object with identical content hits.
        assert cache.lookup(parse_module(SRC), "k") == "result"
        assert cache.hits == 1 and cache.misses == 0

    def test_fingerprint_change_is_a_miss(self):
        cache = CompileCache()
        cache.store(parse_module(SRC), "k", "result")
        changed = parse_module(SRC)
        changed.functions["f"].blocks[0].instrs[0].imm = 9
        assert cache.lookup(changed, "k") is None
        assert cache.misses == 1

    def test_config_change_is_a_miss(self):
        cache = CompileCache()
        cache.store(parse_module(SRC), config_key("vliw"), "result")
        assert cache.lookup(parse_module(SRC), config_key("base")) is None

    def test_eviction_is_lru(self):
        cache = CompileCache(max_entries=2)
        first = parse_module(SRC)
        second = parse_module(SRC.replace("1", "2"))
        third = parse_module(SRC.replace("1", "3"))
        cache.store(first, "k", "a")
        cache.store(second, "k", "b")
        # Touch "a": it becomes most-recent, so storing "c" evicts "b".
        assert cache.lookup(first, "k") == "a"
        cache.store(third, "k", "c")
        assert len(cache) == 2
        assert cache.lookup(first, "k") == "a"
        assert cache.lookup(second, "k") is None
        assert cache.lookup(third, "k") == "c"
        assert cache.evictions == 1

    def test_restore_refreshes_recency(self):
        # Re-storing an existing key must move it to most-recent, not
        # duplicate it or change the entry count.
        cache = CompileCache(max_entries=2)
        first = parse_module(SRC)
        second = parse_module(SRC.replace("1", "2"))
        third = parse_module(SRC.replace("1", "3"))
        cache.store(first, "k", "a")
        cache.store(second, "k", "b")
        cache.store(first, "k", "a2")
        assert len(cache) == 2
        cache.store(third, "k", "c")
        assert cache.lookup(first, "k") == "a2"
        assert cache.lookup(second, "k") is None

    def test_counters_snapshot(self):
        cache = CompileCache(max_entries=1)
        first = parse_module(SRC)
        second = parse_module(SRC.replace("1", "2"))
        cache.store(first, "k", "a")
        cache.lookup(first, "k")
        cache.lookup(second, "k")
        cache.store(second, "k", "b")
        assert cache.counters == {
            "cache.hits": 1,
            "cache.misses": 1,
            "cache.evictions": 1,
            "cache.entries": 1,
        }


class TestMeasureMemo:
    def test_repeat_measurement_hits_the_cache(self):
        cache = CompileCache()
        wl = _workload("compress")
        cold = measure(wl, "base", memo=cache)
        warm = measure(wl, "base", memo=cache)
        assert not cold.memo_hit
        assert warm.memo_hit
        assert warm.value == cold.value
        assert warm.cycles == cold.cycles
        assert warm.static_instructions == cold.static_instructions

    def test_levels_do_not_collide(self):
        cache = CompileCache()
        wl = _workload("compress")
        base = measure(wl, "base", memo=cache)
        vliw = measure(wl, "vliw", memo=cache)
        assert not base.memo_hit and not vliw.memo_hit
        assert base.value == vliw.value

    def test_profile_guided_compiles_are_never_cached(self):
        from repro.evaluate import train_profile

        cache = CompileCache()
        wl = _workload("compress")
        profile, plan = train_profile(wl)
        m = measure(wl, "vliw", profile=profile, plan=plan, memo=cache)
        assert not m.memo_hit
        assert len(cache) == 0


class TestMemoExecutionMatrix:
    """A cache hit skips the *compile*, never the run or the value check.

    ``memo=`` interacts with ``check_against=`` and ``mem_model=``: the
    cache key covers only compilation inputs, so a hit must still
    execute the cached module on the requested memory model and still
    enforce the reference value.
    """

    def test_hit_still_executes_and_checks_on_paged(self):
        from repro.evaluate import reference_value

        cache = CompileCache()
        wl = _workload("compress")
        ref = reference_value(wl)
        cold = measure(wl, "vliw", memo=cache, check_against=ref, mem_model="paged")
        warm = measure(wl, "vliw", memo=cache, check_against=ref, mem_model="paged")
        assert not cold.memo_hit and warm.memo_hit
        assert warm.value == ref
        assert warm.cycles == cold.cycles > 0

    def test_hit_does_not_bypass_check_against(self):
        import pytest

        cache = CompileCache()
        wl = _workload("compress")
        measure(wl, "vliw", memo=cache)  # prime the cache
        with pytest.raises(AssertionError, match="reference"):
            measure(wl, "vliw", memo=cache, check_against=10**9, mem_model="paged")

    def test_cache_counters_land_on_resilience_report(self):
        cache = CompileCache()
        wl = _workload("compress")
        cold = measure(wl, "vliw", memo=cache, resilience="retry")
        warm = measure(wl, "vliw", memo=cache, resilience="retry")
        assert cold.resilience_report.counters["cache.misses"] == 1
        assert warm.resilience_report.counters["cache.hits"] == 1
        assert warm.resilience_report.counters["cache.evictions"] == 0

    def test_mem_model_does_not_split_the_cache(self):
        # The memory model is an execution knob, not a compile input: a
        # module compiled during a flat run must be reused for a paged one.
        cache = CompileCache()
        wl = _workload("compress")
        flat = measure(wl, "vliw", memo=cache, mem_model="flat")
        paged = measure(wl, "vliw", memo=cache, mem_model="paged")
        assert not flat.memo_hit and paged.memo_hit
        assert paged.value == flat.value
