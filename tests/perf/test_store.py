"""PersistentCacheShard: checksummed persistence, per-entry quarantine.

The corruption contract under test: a bit-flipped (or truncated, or
misnamed) entry file is quarantined *individually* — renamed
``*.corrupt`` — while every other entry in the shard keeps serving.
Corruption of one file must never discard the shard.
"""

import json

from repro.perf.store import PersistentCacheShard, entry_checksum

FP_A = "aa" + "0" * 30
FP_B = "bb" + "1" * 30
FP_C = "aa" + "2" * 30  # same prefix directory as FP_A


def _fill(store):
    store.put(FP_A, "vliw", {"ir": "func a", "static_instructions": 3})
    store.put(FP_B, "vliw", {"ir": "func b", "static_instructions": 4})
    store.put(FP_C, "base", {"ir": "func c", "static_instructions": 5})


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        payload = {"ir": "func a", "static_instructions": 3}
        store.put(FP_A, "vliw", payload)
        assert store.get(FP_A, "vliw") == payload
        assert store.get(FP_A, "base") is None  # different config key
        assert store.get(FP_B, "vliw") is None
        assert store.counters["store.hits"] == 1
        assert store.counters["store.misses"] == 2

    def test_survives_reopen(self, tmp_path):
        _fill(PersistentCacheShard(tmp_path))
        reopened = PersistentCacheShard(tmp_path)
        assert reopened.get(FP_B, "vliw") == {
            "ir": "func b", "static_instructions": 4,
        }
        assert len(reopened) == 3

    def test_put_overwrites_atomically(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        store.put(FP_A, "vliw", {"ir": "old"})
        path = store.put(FP_A, "vliw", {"ir": "new"})
        assert store.get(FP_A, "vliw") == {"ir": "new"}
        # No stray temp files left behind.
        assert list(path.parent.glob("*.tmp")) == []

    def test_sharded_by_fingerprint_prefix(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        _fill(store)
        assert (tmp_path / "aa").is_dir() and (tmp_path / "bb").is_dir()
        assert len(list((tmp_path / "aa").glob("*.json"))) == 2

    def test_load_all_yields_every_entry(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        _fill(store)
        entries = {(fp, key) for fp, key, _ in store.load_all()}
        assert entries == {(FP_A, "vliw"), (FP_B, "vliw"), (FP_C, "base")}


class TestQuarantine:
    def _bit_flip(self, path):
        """Flip one bit inside the stored payload, keeping valid JSON."""
        entry = json.loads(path.read_text())
        entry["payload"]["ir"] = entry["payload"]["ir"][:-1] + "X"
        path.write_text(json.dumps(entry))

    def test_bit_flip_quarantines_only_that_entry(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        _fill(store)
        victim = store._path(FP_A, "vliw")
        self._bit_flip(victim)

        fresh = PersistentCacheShard(tmp_path)
        assert fresh.get(FP_A, "vliw") is None
        # The corrupt file was renamed aside, not deleted, and nothing
        # else in the same prefix directory was touched.
        assert not victim.exists()
        assert victim.with_name(victim.name + ".corrupt").exists()
        assert fresh.get(FP_C, "base") == {
            "ir": "func c", "static_instructions": 5,
        }
        assert fresh.get(FP_B, "vliw") == {
            "ir": "func b", "static_instructions": 4,
        }
        assert fresh.counters["store.quarantined"] == 1

    def test_load_all_continues_past_corruption(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        _fill(store)
        self._bit_flip(store._path(FP_A, "vliw"))
        fresh = PersistentCacheShard(tmp_path)
        survivors = {(fp, key) for fp, key, _ in fresh.load_all()}
        assert survivors == {(FP_B, "vliw"), (FP_C, "base")}
        assert fresh.counters["store.quarantined"] == 1

    def test_truncated_entry_is_quarantined(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        _fill(store)
        victim = store._path(FP_B, "vliw")
        victim.write_text(victim.read_text()[: len(victim.read_text()) // 2])
        assert store.get(FP_B, "vliw") is None
        assert victim.with_name(victim.name + ".corrupt").exists()

    def test_wrong_fingerprint_under_right_name_is_quarantined(self, tmp_path):
        # An internally-consistent entry sitting under another entry's
        # filename is corruption (e.g. a botched restore), not a hit.
        store = PersistentCacheShard(tmp_path)
        payload = {"ir": "func z"}
        entry = {
            "fingerprint": FP_B,
            "key": "vliw",
            "payload": payload,
            "checksum": entry_checksum(FP_B, "vliw", payload),
        }
        target = store._path(FP_A, "vliw")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(entry))
        assert store.get(FP_A, "vliw") is None
        assert target.with_name(target.name + ".corrupt").exists()

    def test_quarantined_entry_can_be_rewritten(self, tmp_path):
        store = PersistentCacheShard(tmp_path)
        _fill(store)
        self._bit_flip(store._path(FP_A, "vliw"))
        assert store.get(FP_A, "vliw") is None
        store.put(FP_A, "vliw", {"ir": "func a2"})
        assert store.get(FP_A, "vliw") == {"ir": "func a2"}
