"""Trace output is well-formed Chrome trace-event JSON."""

import json

from repro.ir.parser import parse_module
from repro.perf.trace import TraceRecorder
from repro.pipeline import compile_module
from repro.workloads import suite

#: Phases the Trace Event format defines for the events we emit.
_VALID_PH = {"X", "i", "C", "M"}


def _workload(name: str):
    return next(wl for wl in suite() if wl.name == name)


def _validate(payload):
    """Structural checks Chrome's trace importer performs on load."""
    assert isinstance(payload, dict)
    assert payload["displayTimeUnit"] in ("ms", "ns")
    events = payload["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert event["ph"] in _VALID_PH
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        if event["ph"] == "C":
            assert isinstance(event["args"], dict) and event["args"]
    return events


class TestRecorder:
    def test_span_complete_counter_shapes(self):
        trace = TraceRecorder(process_name="unit")
        with trace.span("work", cat="pass", detail=1):
            pass
        trace.instant("marker")
        trace.counter("stats", {"hits": 3, "misses": 1})
        events = _validate(json.loads(trace.to_json()))
        names = [e["name"] for e in events]
        assert "work" in names and "marker" in names and "stats" in names
        # Metadata names the process so the viewer labels the track.
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["args"].get("name") == "unit" for e in meta)

    def test_write_round_trips(self, tmp_path):
        trace = TraceRecorder()
        with trace.span("s"):
            pass
        path = tmp_path / "out.trace.json"
        trace.write(str(path))
        _validate(json.loads(path.read_text()))


class TestCompileTrace:
    def test_plain_compile_emits_function_spans(self):
        wl = _workload("compress")
        trace = TraceRecorder()
        compile_module(wl.fresh_module(), "vliw", trace=trace)
        events = _validate(trace.to_dict())
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert "function" in cats
        # Per-(pass, function) naming: "pass:function".
        assert any(
            ":" in e["name"] for e in events if e.get("cat") == "function"
        )

    def test_guarded_compile_emits_snapshot_and_counter_events(self):
        wl = _workload("compress")
        trace = TraceRecorder()
        result = compile_module(
            wl.fresh_module(),
            "vliw",
            resilience="rollback",
            sanitize=True,
            trace=trace,
        )
        events = _validate(trace.to_dict())
        cats = {e.get("cat") for e in events if e["ph"] == "X"}
        assert {"function", "snapshot", "diffcheck", "sanitize"} <= cats
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "snapshots" for e in counters)
        assert any(e["name"] == "memoization" for e in counters)
        # The same counters land on the resilience report.
        assert result.resilience is not None
        assert result.resilience.counters.get("snapshot.fn_reused", 0) > 0

    def test_parallel_compile_names_worker_threads(self):
        trace = TraceRecorder()
        module = parse_module(
            """
func a(r3):
    AI r3, r3, 1
    RET

func b(r3):
    AI r3, r3, 2
    RET
"""
        )
        compile_module(module, "base", jobs=2, trace=trace)
        events = _validate(trace.to_dict())
        thread_meta = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        names = {e["args"]["name"] for e in thread_meta}
        assert "compile" in names
