"""Function-parallel compilation is bit-identical to serial.

The acceptance contract for ``jobs=``: workers partition per-function
work, module passes are serial barriers, and the merge is deterministic
— so the printed module (and the stats) must match ``jobs=1`` exactly,
for every workload at every level.
"""

import pytest

from repro.ir import format_module
from repro.pipeline import compile_module
from repro.workloads import suite

WORKLOADS = list(suite())


@pytest.mark.parametrize("level", ["base", "vliw"])
@pytest.mark.parametrize("wl", WORKLOADS, ids=[w.name for w in WORKLOADS])
class TestParallelDeterminism:
    def test_jobs4_matches_serial(self, wl, level):
        serial = compile_module(wl.fresh_module(), level, jobs=1)
        parallel = compile_module(wl.fresh_module(), level, jobs=4)
        assert format_module(parallel.module) == format_module(serial.module)
        assert parallel.static_instructions == serial.static_instructions
        assert parallel.pass_changes == serial.pass_changes
        # Worker-scope stats merge in module order: same counters too.
        assert parallel.ctx.stats == serial.ctx.stats


class TestGuardedParallelDeterminism:
    def test_guarded_jobs2_matches_serial(self):
        wl = next(w for w in WORKLOADS if w.name == "compress")
        kwargs = dict(resilience="rollback", sanitize=True)
        serial = compile_module(wl.fresh_module(), "vliw", jobs=1, **kwargs)
        parallel = compile_module(wl.fresh_module(), "vliw", jobs=2, **kwargs)
        assert format_module(parallel.module) == format_module(serial.module)
        assert parallel.resilience.rollbacks == serial.resilience.rollbacks
