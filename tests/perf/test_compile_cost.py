"""``CompileResult.compile_seconds`` covers the whole compile.

Regression: timing used to start *after* ``module.clone()`` and the
edge-split application, so the E2 compile-cost benchmark undercounted
setup — the clock must start before any setup work.
"""

import time

from repro.evaluate import train_profile
from repro.ir.module import Module
from repro.pipeline import compile_module
from repro.workloads import suite


def _workload(name: str):
    return next(wl for wl in suite() if wl.name == name)


def test_clone_cost_is_charged(monkeypatch):
    original = Module.clone

    def slow_clone(self):
        time.sleep(0.05)
        return original(self)

    monkeypatch.setattr(Module, "clone", slow_clone)
    result = compile_module(_workload("compress").fresh_module(), "none")
    assert result.compile_seconds >= 0.05


def test_edge_split_cost_is_charged(monkeypatch):
    wl = _workload("compress")
    profile, plan = train_profile(wl)

    import repro.pipeline as pipeline_mod

    original = pipeline_mod.apply_edge_splits

    def slow_split(module, the_plan):
        time.sleep(0.05)
        return original(module, the_plan)

    monkeypatch.setattr(pipeline_mod, "apply_edge_splits", slow_split)
    result = compile_module(
        wl.fresh_module(), "vliw", profile=profile, plan=plan
    )
    assert result.compile_seconds >= 0.05
