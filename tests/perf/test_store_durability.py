"""The shard under environmental failure: power loss, full disks,
dying media.

``test_store.py`` covers per-entry corruption (checksums, quarantine);
this file covers the filesystem turning hostile, via the chaos shim
(:mod:`repro.robustness.chaosfs`). The crash tests are the pin for the
store's durable-publication sequence — drop either fsync from
``_put_once`` and they fail.
"""

import errno
import os
import time

import pytest

from repro.perf.store import PersistentCacheShard
from repro.robustness.chaosfs import ChaosFs, ChaosSpec, SimulatedCrash

PAYLOAD = {"ir": "func main(r3):\n    RET\n", "level_served": "vliw",
           "static_instructions": 2}


def shard(root, fs, **kwargs):
    return PersistentCacheShard(root, fs=fs, **kwargs)


class TestCrashDurability:
    def test_published_entry_survives_power_loss(self, tmp_path):
        fs = ChaosFs()
        store = shard(tmp_path, fs)
        store.put("aa" * 16, "vliw", PAYLOAD)
        fs.apply_crash()  # power cut immediately after put returns
        survivor = shard(tmp_path, ChaosFs())
        assert survivor.get("aa" * 16, "vliw") == PAYLOAD

    def test_overwrite_keeps_old_or_new_never_torn(self, tmp_path):
        fs = ChaosFs()
        store = shard(tmp_path, fs)
        fp = "bb" * 16
        old = dict(PAYLOAD, static_instructions=2)
        new = dict(PAYLOAD, static_instructions=9)
        store.put(fp, "vliw", old)
        fs.apply_crash()
        store.put(fp, "vliw", new)
        fs.apply_crash()
        after = shard(tmp_path, ChaosFs()).get(fp, "vliw")
        assert after in (old, new)
        assert after is not None  # never quarantined, never lost

    def test_crash_mid_publication_loses_only_the_new_entry(self, tmp_path):
        # Power cut injected at the dir fsync — the last step. The
        # pre-crash durable view must hold the *old* complete entry.
        fp = "cc" * 16
        setup_fs = ChaosFs()
        store = shard(tmp_path, setup_fs)
        store.put(fp, "vliw", PAYLOAD)
        setup_fs.apply_crash()

        fs = ChaosFs([ChaosSpec(kind="crash", op="fsync-dir")])
        dying = shard(tmp_path, fs)
        with pytest.raises(SimulatedCrash):
            dying.put(fp, "vliw", dict(PAYLOAD, static_instructions=99))
        fs.apply_crash()
        after = shard(tmp_path, ChaosFs())
        assert after.get(fp, "vliw") == PAYLOAD  # old entry, intact
        assert after.quarantined == 0

    def test_the_fsync_sequence_is_what_saves_it(self, tmp_path):
        """Regression pin: publish WITHOUT the fsyncs and power loss
        eats the entry — the exact bug ``_put_once`` used to have."""
        fs = ChaosFs()
        path = tmp_path / "aa" / "entry.json"
        path.parent.mkdir(parents=True)
        tmp = path.with_name(path.name + ".tmp")
        fs.write_text(tmp, "data")
        fs.replace(tmp, path)  # no fsync(tmp), no fsync_dir(parent)
        fs.apply_crash()
        assert not path.exists()


class TestDiskBudget:
    def _put_n(self, store, n, key="vliw"):
        for index in range(n):
            fp = f"{index:02d}" + "ab" * 15
            store.put(fp, key, dict(PAYLOAD, seq=index))
            # mtime is the LRU clock; keep insertions ordered.
            stamp = time.time() - (n - index) * 10
            os.utime(store._path(fp, key), (stamp, stamp))

    def test_budget_evicts_oldest_first(self, tmp_path):
        fs = ChaosFs()
        store = shard(tmp_path, fs)
        self._put_n(store, 4)
        entry_size = store.disk_bytes() // 4
        store.max_bytes = entry_size * 2 + entry_size // 2  # room for ~2
        store.put("ff" * 16, "vliw", PAYLOAD)
        assert store.evictions > 0
        assert store.disk_bytes() <= store.max_bytes + entry_size
        # The newest pre-existing entry and the new one survive; the
        # oldest did not.
        assert store.get("00" + "ab" * 15, "vliw") is None
        assert store.get("ff" * 16, "vliw") == PAYLOAD

    def test_enospc_evicts_and_retries_once(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="enospc", op="write",
                                path=f"*{'ee' * 16}*.tmp", times=1)])
        store = shard(tmp_path, fs)
        self._put_n(store, 2)
        result = store.put("ee" * 16, "vliw", PAYLOAD)
        assert result is not None  # retry after eviction succeeded
        assert store.evictions > 0
        assert store.write_errors == 0
        assert store.get("ee" * 16, "vliw") == PAYLOAD

    def test_persistent_enospc_gives_up_cleanly(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="enospc", op="write", path="*.tmp", times=0)])
        store = shard(tmp_path, fs)
        assert store.put("dd" * 16, "vliw", PAYLOAD) is None
        assert store.write_errors == 1
        assert not store.disabled  # full is not dying


class TestMediaQuarantine:
    def test_eio_run_disables_the_shard(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="eio", op="write", times=0)])
        store = shard(tmp_path, fs, eio_threshold=3)
        for index in range(3):
            assert store.put(f"{index:02d}" + "cd" * 15, "vliw", PAYLOAD) is None
        assert store.disabled
        assert store.counters["store.disabled"] == 1
        # Disabled shard: reads miss, writes drop, no fs traffic.
        ops_before = fs.ops
        assert store.get("00" + "cd" * 15, "vliw") is None
        assert store.put("ee" * 16, "vliw", PAYLOAD) is None
        assert fs.ops == ops_before

    def test_success_resets_the_eio_run(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="eio", op="write", path="*.tmp", times=2)])
        store = shard(tmp_path, fs, eio_threshold=3)
        store.put("aa" * 16, "vliw", PAYLOAD)  # eio
        store.put("bb" * 16, "vliw", PAYLOAD)  # eio
        assert store.put("cc" * 16, "vliw", PAYLOAD) is not None  # ok: run resets
        assert not store.disabled
        store.put("dd" * 16, "vliw", PAYLOAD)
        assert not store.disabled

    def test_read_eio_counts_toward_quarantine(self, tmp_path):
        seeded = shard(tmp_path, ChaosFs())
        for index in range(3):
            seeded.put(f"{index:02d}" + "ef" * 15, "vliw", PAYLOAD)
        fs = ChaosFs([ChaosSpec(kind="eio", op="read", times=0)])
        store = shard(tmp_path, fs, eio_threshold=3)
        for index in range(3):
            assert store.get(f"{index:02d}" + "ef" * 15, "vliw") is None
        assert store.disabled

    def test_torn_write_is_caught_by_the_checksum(self, tmp_path):
        fs = ChaosFs([ChaosSpec(kind="torn-write", op="write", path="*.tmp",
                                times=1)], seed=11)
        store = shard(tmp_path, fs)
        store.put("ab" * 16, "vliw", PAYLOAD)  # silently torn
        reader = shard(tmp_path, ChaosFs())
        assert reader.get("ab" * 16, "vliw") is None
        assert reader.quarantined == 1
