"""Profile file round-tripping (the paper's between-pass profile file)."""

from repro.ir import parse_module
from repro.pdf import collect_profile
from repro.pdf.instrument import InstrumentationPlan
from repro.pdf.profile import ProfileData
from repro.pipeline import compile_module
from repro.machine.interpreter import run_function

SRC = """
func f(r3):
entry:
    MTCTR r3
    LI r4, 0
loop:
    AI r4, r4, 1
    CI cr0, r4, 3
    BT skip, cr0.le
    AI r4, r4, 10
skip:
    BCT loop
done:
    LR r3, r4
    RET
"""


def test_profile_roundtrip(tmp_path):
    module = parse_module(SRC)
    profile, plan = collect_profile(module, "f", [(6,)])

    path = tmp_path / "prof.json"
    profile.save(str(path))
    loaded = ProfileData.load(str(path))
    assert loaded.block_counts == profile.block_counts
    assert loaded.edge_counts == profile.edge_counts


def test_plan_roundtrip():
    module = parse_module(SRC)
    _, plan = collect_profile(module, "f", [(6,)])
    loaded = InstrumentationPlan.from_json(plan.to_json())
    assert loaded.counted == plan.counted
    assert loaded.split_edges == plan.split_edges
    assert loaded.slots == plan.slots


def test_loaded_profile_drives_compilation(tmp_path):
    module = parse_module(SRC)
    profile, plan = collect_profile(module, "f", [(6,)])
    loaded_profile = ProfileData.from_json(profile.to_json())
    loaded_plan = InstrumentationPlan.from_json(plan.to_json())

    direct = compile_module(module, "vliw", profile=profile, plan=plan)
    via_file = compile_module(module, "vliw", profile=loaded_profile, plan=loaded_plan)

    for args in ([2], [6], [9]):
        a = run_function(direct.module, "f", args).value
        b = run_function(via_file.module, "f", args).value
        c = run_function(module, "f", args).value
        assert a == b == c


def test_accumulated_profile_serialises(tmp_path):
    module = parse_module(SRC)
    p1, plan = collect_profile(module, "f", [(6,)])
    p2, _ = collect_profile(module, "f", [(3,)], plan=plan)
    p1.accumulate(p2)
    loaded = ProfileData.from_json(p1.to_json())
    assert loaded.block_counts == p1.block_counts
