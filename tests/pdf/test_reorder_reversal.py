"""PDF basic block re-ordering and branch reversal."""

from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.pdf import BranchReversal, ProfileGuidedReorder, collect_profile
from repro.pdf.instrument import apply_edge_splits
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent

# A hot path that is all taken branches in the cold-first layout.
BIASED = """
data arr: size=128

func f(r3):
entry:
    MTCTR r3
    LI r4, 0
loop:
    CI cr0, r4, 1000000
    BT hot, cr0.lt
cold:
    AI r4, r4, 100
    B bottom
hot:
    AI r4, r4, 1
    AI r4, r4, 2
    AI r4, r4, 3
    AI r4, r4, 4
bottom:
    BCT loop
done:
    LR r3, r4
    RET
"""


def profiled_ctx(src, entry="f", train=(20,)):
    module = parse_module(src)
    profile, plan = collect_profile(module, entry, [train])
    work = module.clone()
    apply_edge_splits(work, plan)
    ctx = PassContext(work)
    ctx.edge_profile = dict(profile.edge_counts)
    ctx.block_profile = dict(profile.block_counts)
    return module, work, ctx


class TestReorder:
    def test_requires_profile(self):
        module = parse_module(BIASED)
        assert not ProfileGuidedReorder().run_on_module(module, PassContext(module))

    def test_semantics_preserved(self):
        before, work, ctx = profiled_ctx(BIASED)
        ProfileGuidedReorder().run_on_module(work, ctx)
        verify_module(work)
        assert_equivalent(before, work, "f", [[1], [7], [20]])

    def test_entry_stays_first(self):
        _, work, ctx = profiled_ctx(BIASED)
        ProfileGuidedReorder().run_on_module(work, ctx)
        assert work.functions["f"].entry.label == "entry"


class TestBranchReversal:
    def test_requires_profile(self):
        module = parse_module(BIASED)
        assert not BranchReversal().run_on_module(module, PassContext(module))

    def test_strongly_taken_branch_reversed(self):
        before, work, ctx = profiled_ctx(BIASED)
        changed = BranchReversal().run_on_module(work, ctx)
        verify_module(work)
        assert changed
        assert ctx.stats.get("pdf.branches-reversed", 0) >= 1
        assert_equivalent(before, work, "f", [[1], [7], [20]])

    def test_hot_trace_loses_taken_conditional(self):
        before, work, ctx = profiled_ctx(BIASED)
        BranchReversal().run_on_module(work, ctx)
        rb = run_function(before, "f", [20], record_trace=True)
        ra = run_function(work, "f", [20], record_trace=True)
        taken_cond = lambda trace: sum(
            1 for i, t in trace if i.opcode in ("BT", "BF") and t
        )
        assert taken_cond(ra.trace) < taken_cond(rb.trace)

    def test_balanced_branch_untouched(self):
        src = """
func f(r3):
entry:
    CI cr0, r3, 0
    BT right, cr0.lt
left:
    LI r3, 1
    RET
right:
    LI r3, 2
    RET
"""
        module = parse_module(src)
        profile, plan = collect_profile(module, "f", [(5,), (-5,)])
        work = module.clone()
        apply_edge_splits(work, plan)
        ctx = PassContext(work)
        ctx.edge_profile = dict(profile.edge_counts)
        ctx.block_profile = dict(profile.block_counts)
        assert not BranchReversal().run_on_module(work, ctx)

    def test_backward_loop_branch_not_reversed(self):
        src = """
func f(r3):
entry:
    LI r4, 0
loop:
    AI r4, r4, 1
    C cr0, r4, r3
    BT loop, cr0.lt
done:
    LR r3, r4
    RET
"""
        module = parse_module(src)
        profile, plan = collect_profile(module, "f", [(50,)])
        work = module.clone()
        apply_edge_splits(work, plan)
        ctx = PassContext(work)
        ctx.edge_profile = dict(profile.edge_counts)
        ctx.block_profile = dict(profile.block_counts)
        BranchReversal().run_on_module(work, ctx)
        verify_module(work)
        assert_equivalent(module, work, "f", [[5], [50]])
        # The loop-closing branch stays a backward conditional branch.
        fn = work.functions["f"]
        back = [
            i
            for i in fn.instructions()
            if i.is_cond_branch and i.target == "loop"
        ]
        assert back
