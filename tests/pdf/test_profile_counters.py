"""Stale-profile reads are counted, not silent.

Regression: ``PassContext.edge_count``/``block_count`` return 0 for
labels the profile does not know — which is correct for genuinely cold
blocks but silently wrong for blocks *renamed* by CFG-restructuring
passes that run before the PDF passes (VLIWScheduling runs before
ProfileGuidedReorder). The counters make the distinction observable:
every lookup is recorded as a hit or a miss in ``ctx.stats`` and
surfaced through the resilience report and the trace output.
"""

from repro.ir.parser import parse_module
from repro.perf.trace import TraceRecorder
from repro.robustness import GuardedPassManager
from repro.transforms import Pass
from repro.transforms.pass_manager import PassContext

SRC = """
func f(r3):
    AI r3, r3, 1
    RET
"""


def _ctx():
    module = parse_module(SRC)
    return PassContext(
        module,
        edge_profile={("f", "entry", "body"): 7},
        block_profile={("f", "entry"): 9},
    )


class TestLookupCounters:
    def test_hits_are_counted(self):
        ctx = _ctx()
        assert ctx.block_count("f", "entry") == 9
        assert ctx.edge_count("f", "entry", "body") == 7
        assert ctx.stats["profile.block.hits"] == 1
        assert ctx.stats["profile.edge.hits"] == 1
        assert "profile.block.misses" not in ctx.stats

    def test_renamed_block_is_a_miss_not_a_cold_zero(self):
        # VLIWScheduling renames "entry" to e.g. "entry.unrolled" before
        # the reorder pass reads the profile: the lookup still returns 0
        # (the pass treats it as cold) but the miss is now recorded.
        ctx = _ctx()
        assert ctx.block_count("f", "entry.unrolled") == 0
        assert ctx.edge_count("f", "entry.unrolled", "body") == 0
        assert ctx.stats["profile.block.misses"] == 1
        assert ctx.stats["profile.edge.misses"] == 1

    def test_no_profile_means_no_counters(self):
        ctx = PassContext(parse_module(SRC))
        assert ctx.block_count("f", "entry") is None
        assert ctx.edge_count("f", "entry", "body") is None
        assert not ctx.stats


class _ProfileReader(Pass):
    name = "profile-reader"

    def run_on_function(self, fn, ctx):
        ctx.block_count(fn.name, "entry")      # hit
        ctx.block_count(fn.name, "renamed")    # miss
        return False


class TestSurfacedInReportAndTrace:
    def test_guard_folds_profile_counters_into_report(self):
        ctx = _ctx()
        trace = TraceRecorder()
        manager = GuardedPassManager([_ProfileReader()], trace=trace)
        manager.run(ctx.module, ctx)
        counters = manager.report.counters
        assert counters["profile.block.hits"] == 1
        assert counters["profile.block.misses"] == 1
        counter_events = [
            e for e in trace.to_dict()["traceEvents"]
            if e["ph"] == "C" and e["name"] == "profile-lookups"
        ]
        assert counter_events
        assert counter_events[0]["args"]["block.misses"] == 1
