"""Low-overhead profiling: planning, instrumentation, count recovery."""

from repro.ir import parse_module, verify_module
from repro.machine.interpreter import run_function
from repro.pdf import (
    apply_instrumentation,
    collect_profile,
    plan_instrumentation,
    recover_counts,
)
from repro.pdf.instrument import (
    COUNTS_SYMBOL,
    instrumentation_overhead,
    propagate_known,
)
from repro.transforms.linkage import LinkageLowering
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent

# The eqntott-like loop from the paper's profiling figure.
EQNTOTT_LOOP = """
data a: size=64 init=[2,2,1,2,0,2,2,2]
data b: size=64 init=[2,2,2,2,2,2,1,2]

func f(r3):
    MTCTR r3
    LA r4, a
    LA r5, b
    AI r4, r4, -4
    AI r5, r5, -4
bb1:
    LU r6, 4(r4)
    LU r7, 4(r5)
    CI cr0, r6, 2
    BF bb3, cr0.eq
bb2:
    LI r6, 0
bb3:
    CI cr1, r7, 2
    BF bb5, cr1.eq
bb4:
    LI r7, 0
bb5:
    C cr2, r6, r7
    BT bb8, cr2.ne
bb6:
    BCT bb1
bb7:
    LI r3, 0
    RET
bb8:
    S r3, r6, r7
    RET
"""

DIAMOND = """
func f(r3):
entry:
    CI cr0, r3, 0
    BT right, cr0.lt
left:
    AI r3, r3, 1
    B join
right:
    AI r3, r3, 2
join:
    RET
"""


class TestPlanning:
    def test_plan_determines_all_edges(self):
        module = parse_module(EQNTOTT_LOOP)
        plan = plan_instrumentation(module)
        fn = module.functions["f"]
        shadow = module.clone()
        from repro.pdf.instrument import apply_edge_splits

        apply_edge_splits(shadow, plan)
        sfn = shadow.functions["f"]
        known_b, known_e = propagate_known(
            sfn, set(plan.counted["f"])
        )
        from repro.analysis.cfg import reachable_blocks

        assert known_b >= reachable_blocks(sfn)
        all_edges = {
            (bb.label, s.label) for bb in sfn.blocks for s in sfn.successors(bb)
        }
        assert all_edges <= known_e

    def test_counts_subset_of_blocks(self):
        module = parse_module(EQNTOTT_LOOP)
        plan = plan_instrumentation(module)
        n_blocks = len(module.functions["f"].blocks)
        # The whole point: strictly fewer counters than blocks.
        assert 0 < len(plan.counted["f"]) < n_blocks

    def test_plan_deterministic(self):
        p1 = plan_instrumentation(parse_module(EQNTOTT_LOOP))
        p2 = plan_instrumentation(parse_module(EQNTOTT_LOOP))
        assert p1.counted == p2.counted
        assert p1.split_edges == p2.split_edges


class TestInstrumentation:
    def test_counting_code_semantically_transparent(self):
        before = parse_module(EQNTOTT_LOOP)
        after = parse_module(EQNTOTT_LOOP)
        apply_instrumentation(after)
        LinkageLowering().run_on_module(after, PassContext(after))
        verify_module(after)
        for n in (1, 4, 8):
            r0 = run_function(before, "f", [n])
            r1 = run_function(after, "f", [n])
            assert r0.value == r1.value

    def test_loop_counter_cached_in_register(self):
        module = parse_module(EQNTOTT_LOOP)
        plan = apply_instrumentation(module)
        fn = module.functions["f"]
        from repro.analysis import find_natural_loops

        loops = find_natural_loops(fn)
        in_loop_counters = [
            i
            for loop in loops
            for bb in loop.blocks(fn)
            for i in bb.instrs
            if i.attrs.get("counter")
        ]
        # Inside the loop only AI bumps remain (the paper's one
        # instruction per counted block); loads/stores live outside.
        assert in_loop_counters
        assert all(i.opcode == "AI" for i in in_loop_counters)

    def test_counter_table_collects_exact_counts(self):
        module = parse_module(EQNTOTT_LOOP)
        plan = apply_instrumentation(module)
        LinkageLowering().run_on_module(module, PassContext(module))
        layout = module.layout()
        base = layout[COUNTS_SYMBOL]
        r = run_function(module, "f", [8])
        # Whatever blocks were counted, their counts must equal the true
        # execution counts from the interpreter's own block counting.
        ref = run_function(parse_module(EQNTOTT_LOOP), "f", [8], count_blocks=True)
        for (fname, label), slot in plan.slots.items():
            measured = r.state.mem.get(base + 4 * slot, 0)
            expected = ref.block_counts.get((fname, label), 0)
            if label in {bb.label for bb in parse_module(EQNTOTT_LOOP).functions["f"].blocks}:
                assert measured == expected, (label, measured, expected)

    def test_overhead_counted(self):
        module = parse_module(EQNTOTT_LOOP)
        apply_instrumentation(module)
        assert instrumentation_overhead(module) > 0


class TestRecovery:
    def test_full_counts_recovered(self):
        module = parse_module(EQNTOTT_LOOP)
        profile, plan = collect_profile(module, "f", [(8,)])
        # Reference: complete per-block counts from the interpreter.
        ref = run_function(parse_module(EQNTOTT_LOOP), "f", [8], count_blocks=True)
        for (fname, label), expected in ref.block_counts.items():
            assert profile.block_counts.get((fname, label)) == expected, label

    def test_edge_counts_conserve_flow(self):
        module = parse_module(EQNTOTT_LOOP)
        profile, plan = collect_profile(module, "f", [(8,)])
        shadow = module.clone()
        from repro.pdf.instrument import apply_edge_splits

        apply_edge_splits(shadow, plan)
        fn = shadow.functions["f"]
        for bb in fn.blocks:
            succs = fn.successors(bb)
            if not succs:
                continue
            out = sum(
                profile.edge_counts.get(("f", bb.label, s.label), 0) for s in succs
            )
            count = profile.block_counts.get(("f", bb.label), 0)
            assert out == count, bb.label

    def test_accumulation_over_runs(self):
        module = parse_module(EQNTOTT_LOOP)
        p1, plan = collect_profile(module, "f", [(4,)])
        p2, _ = collect_profile(module, "f", [(4,), (4,)], plan=plan)
        for key, val in p1.block_counts.items():
            assert p2.block_counts[key] == 2 * val

    def test_diamond_edges_need_dummy_or_resolve(self):
        module = parse_module(DIAMOND)
        profile, plan = collect_profile(module, "f", [(5,), (-5,)])
        # Both arms observed once.
        assert profile.edge_counts.get(("f", "entry", "left")) == 1
        assert profile.edge_counts.get(("f", "entry", "right")) == 1

    def test_recover_counts_direct(self):
        fn = parse_module(DIAMOND).functions["f"]
        blocks, edges = recover_counts(
            fn, {"entry": 10, "left": 7}
        )
        assert blocks["right"] == 3
        assert blocks["join"] == 10
        assert edges[("entry", "left")] == 7
