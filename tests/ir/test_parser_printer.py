import pytest

from repro.ir import (
    ParseError,
    format_function,
    format_instr,
    format_module,
    parse_function,
    parse_module,
)
from repro.ir.parser import parse_instr
from repro.ir.operands import CTR, cr, gpr

LI_LOOP = """
data nodes: size=2048
data cells: size=2048

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""


class TestParseInstr:
    @pytest.mark.parametrize(
        "text",
        [
            "LI r4, 0",
            "LA r4, somesym",
            "LR r3, r4",
            "L r4, 4(r8)",
            "LU r4, -2(r3)",
            "ST 12(r4), r3",
            "STU -4(r1), r31",
            "A r6, r4, r7",
            "AI r3, r3, 1",
            "NEG r3, r4",
            "NOT r3, r4",
            "C cr0, r5, r3",
            "CI cr1, r8, 0",
            "B loop",
            "BT found, cr0.eq",
            "BF loop, cr1.ne",
            "BCT loop",
            "MTCTR r5",
            "MFCTR r5",
            "CALL print_int, 1",
            "RET",
            "NOP",
        ],
    )
    def test_roundtrip(self, text):
        instr = parse_instr(text)
        assert format_instr(instr) == text

    def test_call_without_nargs(self):
        instr = parse_instr("CALL foo")
        assert instr.symbol == "foo"
        assert instr.nargs == 0

    def test_negative_displacement(self):
        instr = parse_instr("L r4, -8(r1)")
        assert instr.disp == -8
        assert instr.base == gpr(1)

    def test_case_insensitive_opcode(self):
        assert parse_instr("li r4, 3").opcode == "LI"

    @pytest.mark.parametrize(
        "text",
        [
            "FROB r1, r2",
            "LI r4",
            "L r4, 4[r8]",
            "BT found, cr0.zz",
            "A r1, r2",
            "C cr0, r5",
            "LI r4, xyz",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ParseError):
            parse_instr(text)


class TestParseModule:
    def test_li_loop_structure(self):
        module = parse_module(LI_LOOP)
        fn = module.functions["xlygetvalue"]
        assert [bb.label for bb in fn.blocks][:2] == ["loop", "anon.0"]
        assert fn.params == (gpr(3), gpr(8))
        assert "nodes" in module.data
        assert module.data["nodes"].size == 2048

    def test_instruction_after_conditional_branch_starts_new_block(self):
        fn = parse_function(
            """
func f(r3):
    CI cr0, r3, 0
    BT out, cr0.eq
    AI r3, r3, 1
out:
    RET
"""
        )
        # BT ends its block; the AI lives in an anonymous fallthrough block.
        assert len(fn.blocks) == 3

    def test_data_attributes(self):
        module = parse_module(
            "data a: size=8 init=[1, -2]\ndata v: size=4 volatile\nfunc f(r3):\n    RET"
        )
        assert module.data["a"].init == [1, -2]
        assert module.data["v"].volatile
        assert not module.data["a"].volatile

    def test_data_size_defaults_to_init_length(self):
        module = parse_module("data a: init=[1, 2, 3]\nfunc f(r3):\n    RET")
        assert module.data["a"].size == 12

    def test_comments_stripped(self):
        fn = parse_function(
            """
func f(r3):
    LI r3, 1   # a comment
    RET        // another
"""
        )
        assert fn.instruction_count() == 2

    def test_duplicate_function_rejected(self):
        with pytest.raises(ValueError):
            parse_module("func f(r3):\n    RET\nfunc f(r3):\n    RET")

    def test_label_outside_function_rejected(self):
        with pytest.raises(ParseError):
            parse_module("orphan:\n    RET")

    def test_parse_function_requires_single_function(self):
        with pytest.raises(ParseError):
            parse_function("func a(r3):\n    RET\nfunc b(r3):\n    RET")


class TestModuleRoundtrip:
    def test_format_parse_format_fixpoint(self):
        module = parse_module(LI_LOOP)
        text = format_module(module)
        module2 = parse_module(text)
        assert format_module(module2) == text

    def test_function_text_contains_all_blocks(self):
        module = parse_module(LI_LOOP)
        text = format_function(module.functions["xlygetvalue"])
        for label in ("loop:", "endofchain:", "found:"):
            assert label in text
