import pytest

from repro.ir import instructions as ins
from repro.ir.instructions import Instr, wrap32
from repro.ir.operands import ARG_REGS, CALL_CLOBBERED, CTR, SP, TOC, cr, gpr


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(12345) == 12345
        assert wrap32(-12345) == -12345

    def test_wraps_positive_overflow(self):
        assert wrap32(2**31) == -(2**31)
        assert wrap32(2**32) == 0
        assert wrap32(2**32 + 7) == 7

    def test_wraps_negative_overflow(self):
        assert wrap32(-(2**31) - 1) == 2**31 - 1

    def test_extremes(self):
        assert wrap32(2**31 - 1) == 2**31 - 1
        assert wrap32(-(2**31)) == -(2**31)


class TestAluSemantics:
    def test_add_wraps(self):
        assert ins.ALU_FUNCS["A"](2**31 - 1, 1) == -(2**31)

    def test_sub(self):
        assert ins.ALU_FUNCS["S"](5, 9) == -4

    def test_mul_wraps(self):
        assert ins.ALU_FUNCS["MUL"](65536, 65536) == 0

    def test_div_truncates_toward_zero(self):
        assert ins.ALU_FUNCS["DIV"](7, 2) == 3
        assert ins.ALU_FUNCS["DIV"](-7, 2) == -3
        assert ins.ALU_FUNCS["DIV"](7, -2) == -3

    def test_div_by_zero_is_total(self):
        assert ins.ALU_FUNCS["DIV"](42, 0) == 0

    def test_shifts_mask_amount(self):
        assert ins.ALU_FUNCS["SL"](1, 33) == 2  # amount mod 32
        assert ins.ALU_FUNCS["SR"](-1, 28) == 15
        assert ins.ALU_FUNCS["SRA"](-16, 2) == -4

    def test_bitwise(self):
        assert ins.ALU_FUNCS["AND"](0b1100, 0b1010) == 0b1000
        assert ins.ALU_FUNCS["OR"](0b1100, 0b1010) == 0b1110
        assert ins.ALU_FUNCS["XOR"](0b1100, 0b1010) == 0b0110


class TestCondFuncs:
    @pytest.mark.parametrize(
        "cond,vals",
        [
            ("eq", {0}),
            ("ne", {-1, 1}),
            ("lt", {-1}),
            ("le", {-1, 0}),
            ("gt", {1}),
            ("ge", {0, 1}),
        ],
    )
    def test_all_codes(self, cond, vals):
        for v in (-1, 0, 1):
            assert ins.COND_FUNCS[cond](v) == (v in vals)


class TestUsesDefs:
    def test_alu_rr(self):
        i = ins.make_alu("A", gpr(3), gpr(4), gpr(5))
        assert i.uses() == (gpr(4), gpr(5))
        assert i.defs() == (gpr(3),)

    def test_alu_ri(self):
        i = ins.make_alui("AI", gpr(3), gpr(3), 1)
        assert i.uses() == (gpr(3),)
        assert i.defs() == (gpr(3),)

    def test_load(self):
        i = ins.make_load(gpr(4), 8, gpr(9))
        assert i.uses() == (gpr(9),)
        assert i.defs() == (gpr(4),)

    def test_load_update_also_defines_base(self):
        i = ins.make_load(gpr(4), 8, gpr(9), update=True)
        assert set(i.defs()) == {gpr(4), gpr(9)}

    def test_store(self):
        i = ins.make_store(8, gpr(9), gpr(4))
        assert set(i.uses()) == {gpr(4), gpr(9)}
        assert i.defs() == ()

    def test_store_update_defines_base(self):
        i = ins.make_store(8, gpr(9), gpr(4), update=True)
        assert i.defs() == (gpr(9),)

    def test_compare_defines_cr(self):
        i = ins.make_cmp(cr(0), gpr(4), gpr(5))
        assert i.defs() == (cr(0),)
        assert set(i.uses()) == {gpr(4), gpr(5)}

    def test_branches(self):
        bt = ins.make_bt("x", cr(1), "eq")
        assert bt.uses() == (cr(1),)
        assert bt.defs() == ()
        bct = ins.make_bct("x")
        assert bct.uses() == (CTR,)
        assert bct.defs() == (CTR,)

    def test_mtctr_mfctr(self):
        assert ins.make_mtctr(gpr(5)).defs() == (CTR,)
        assert ins.make_mfctr(gpr(5)).uses() == (CTR,)
        assert ins.make_mfctr(gpr(5)).defs() == (gpr(5),)

    def test_call_uses_args_and_clobbers(self):
        i = ins.make_call("foo", 2)
        assert set(i.uses()) == set(ARG_REGS[:2]) | {SP, TOC}
        assert set(i.defs()) == set(CALL_CLOBBERED)

    def test_ret(self):
        i = ins.make_ret()
        assert set(i.uses()) == {gpr(3), SP}


class TestClassification:
    def test_terminators(self):
        assert ins.make_b("x").is_terminator
        assert ins.make_bt("x", cr(0), "eq").is_terminator
        assert ins.make_bct("x").is_terminator
        assert ins.make_ret().is_terminator
        assert not ins.make_call("f").is_terminator

    def test_side_effects(self):
        assert ins.make_store(0, gpr(4), gpr(5)).has_side_effects
        assert ins.make_call("f").has_side_effects
        assert not ins.make_load(gpr(3), 0, gpr(4)).has_side_effects
        volatile = ins.make_load(gpr(3), 0, gpr(4))
        volatile.attrs["volatile"] = True
        assert volatile.has_side_effects

    def test_copy(self):
        assert ins.make_lr(gpr(3), gpr(4)).is_copy
        assert not ins.make_li(gpr(3), 0).is_copy


class TestCloneAndRename:
    def test_clone_fresh_uid_and_attrs(self):
        i = ins.make_load(gpr(4), 8, gpr(9))
        i.attrs["counter"] = True
        c = i.clone()
        assert c.uid != i.uid
        assert c.attrs == i.attrs
        c.attrs["counter"] = False
        assert i.attrs["counter"] is True

    def test_rename_uses(self):
        i = ins.make_alu("A", gpr(3), gpr(4), gpr(4))
        i.rename_uses({gpr(4): gpr(9)})
        assert i.ra == gpr(9) and i.rb == gpr(9)
        assert i.rd == gpr(3)

    def test_rename_defs(self):
        i = ins.make_alu("A", gpr(3), gpr(3), gpr(4))
        i.rename_defs({gpr(3): gpr(9)})
        assert i.rd == gpr(9)
        assert i.ra == gpr(3)  # uses untouched

    def test_rename_branch_cr(self):
        i = ins.make_bt("x", cr(0), "eq")
        i.rename_uses({cr(0): cr(5)})
        assert i.crf == cr(5)

    def test_bad_cond_code_rejected(self):
        with pytest.raises(ValueError):
            ins.make_bt("x", cr(0), "zz")
