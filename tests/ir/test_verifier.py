import pytest

from repro.ir import (
    BasicBlock,
    Function,
    Module,
    VerificationError,
    parse_function,
    parse_module,
    verify_function,
    verify_module,
)
from repro.ir.instructions import Instr, make_b, make_li, make_ret
from repro.ir.operands import cr, gpr


def good_function() -> Function:
    return parse_function(
        """
func f(r3):
    CI cr0, r3, 0
    BT out, cr0.eq
    AI r3, r3, 1
out:
    RET
"""
    )


def test_good_function_passes():
    verify_function(good_function())


def test_empty_function_rejected():
    with pytest.raises(VerificationError):
        verify_function(Function("f"))


def test_dangling_branch_target():
    fn = good_function()
    fn.blocks[0].terminator.target = "nowhere"
    with pytest.raises(VerificationError, match="dangling"):
        verify_function(fn)


def test_terminator_must_be_last():
    fn = good_function()
    fn.blocks[0].instrs.insert(0, make_ret())
    with pytest.raises(VerificationError, match="not last"):
        verify_function(fn)


def test_fall_off_end_rejected():
    fn = Function("f")
    fn.add_block(BasicBlock("entry", [make_li(gpr(3), 1)]))
    with pytest.raises(VerificationError, match="fall off"):
        verify_function(fn)


def test_wrong_operand_kind_rejected():
    fn = good_function()
    bad = Instr("A", rd=gpr(3), ra=gpr(4), rb=None)
    fn.blocks[1].instrs.insert(0, bad)
    with pytest.raises(VerificationError):
        verify_function(fn)


def test_unknown_opcode_rejected():
    fn = good_function()
    fn.blocks[1].instrs.insert(0, Instr("BOGUS"))
    with pytest.raises(VerificationError, match="unknown opcode"):
        verify_function(fn)


def test_unknown_data_symbol_rejected():
    module = parse_module("func f(r3):\n    LA r4, missing\n    RET")
    with pytest.raises(VerificationError, match="unknown data symbol"):
        verify_module(module)


def test_known_symbol_and_library_call_accepted():
    module = parse_module(
        "data a: size=4\nfunc f(r3):\n    LA r4, a\n    CALL print_int, 1\n    RET"
    )
    verify_module(module)


def test_call_to_unknown_function_rejected():
    module = parse_module("func f(r3):\n    CALL no_such_fn, 0\n    RET")
    with pytest.raises(VerificationError, match="unknown function"):
        verify_module(module)


def test_call_to_module_function_accepted():
    module = parse_module(
        "func g(r3):\n    RET\nfunc f(r3):\n    CALL g, 1\n    RET"
    )
    verify_module(module)


def test_duplicate_labels_rejected():
    fn = good_function()
    fn.blocks[1].label = fn.blocks[0].label
    with pytest.raises(VerificationError, match="duplicate"):
        verify_function(fn)
