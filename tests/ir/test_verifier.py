import pytest

from repro.ir import (
    BasicBlock,
    Function,
    Module,
    VerificationError,
    parse_function,
    parse_module,
    verify_function,
    verify_module,
)
from repro.ir.instructions import Instr, make_b, make_li, make_ret
from repro.ir.operands import cr, gpr


def good_function() -> Function:
    return parse_function(
        """
func f(r3):
    CI cr0, r3, 0
    BT out, cr0.eq
    AI r3, r3, 1
out:
    RET
"""
    )


def test_good_function_passes():
    verify_function(good_function())


def test_empty_function_rejected():
    with pytest.raises(VerificationError):
        verify_function(Function("f"))


def test_dangling_branch_target():
    fn = good_function()
    fn.blocks[0].terminator.target = "nowhere"
    with pytest.raises(VerificationError, match="dangling"):
        verify_function(fn)


def test_terminator_must_be_last():
    fn = good_function()
    fn.blocks[0].instrs.insert(0, make_ret())
    with pytest.raises(VerificationError, match="not last"):
        verify_function(fn)


def test_fall_off_end_rejected():
    fn = Function("f")
    fn.add_block(BasicBlock("entry", [make_li(gpr(3), 1)]))
    with pytest.raises(VerificationError, match="fall off"):
        verify_function(fn)


def test_wrong_operand_kind_rejected():
    fn = good_function()
    bad = Instr("A", rd=gpr(3), ra=gpr(4), rb=None)
    fn.blocks[1].instrs.insert(0, bad)
    with pytest.raises(VerificationError):
        verify_function(fn)


def test_unknown_opcode_rejected():
    fn = good_function()
    fn.blocks[1].instrs.insert(0, Instr("BOGUS"))
    with pytest.raises(VerificationError, match="unknown opcode"):
        verify_function(fn)


def test_unknown_data_symbol_rejected():
    module = parse_module("func f(r3):\n    LA r4, missing\n    RET")
    with pytest.raises(VerificationError, match="unknown data symbol"):
        verify_module(module)


def test_known_symbol_and_library_call_accepted():
    module = parse_module(
        "data a: size=4\nfunc f(r3):\n    LA r4, a\n    CALL print_int, 1\n    RET"
    )
    verify_module(module)


def test_call_to_unknown_function_rejected():
    module = parse_module("func f(r3):\n    CALL no_such_fn, 0\n    RET")
    with pytest.raises(VerificationError, match="unknown function"):
        verify_module(module)


def test_call_to_module_function_accepted():
    module = parse_module(
        "func g(r3):\n    RET\nfunc f(r3):\n    CALL g, 1\n    RET"
    )
    verify_module(module)


def test_duplicate_labels_rejected():
    fn = good_function()
    fn.blocks[1].label = fn.blocks[0].label
    with pytest.raises(VerificationError, match="duplicate"):
        verify_function(fn)


class TestMalformedIrForTheGuard:
    """The resilience guard (repro.robustness) rolls a pass back when the
    verifier rejects its output — pin down exactly what gets rejected."""

    def test_dangling_target_in_non_terminator_position(self):
        fn = parse_function(
            "func f(r3):\nhead:\n    B gone\nnext:\n    RET"
        )
        with pytest.raises(VerificationError, match="dangling target gone"):
            verify_function(fn)

    def test_unknown_data_symbol_named_in_error(self):
        module = parse_module("func f(r3):\n    LA r4, ghost\n    RET")
        with pytest.raises(VerificationError, match="unknown data symbol ghost"):
            verify_module(module)

    def test_symbol_check_skipped_without_known_symbols(self):
        # verify_function without known_symbols cannot judge LA symbols;
        # only verify_module (which supplies them) rejects.
        module = parse_module("func f(r3):\n    LA r4, ghost\n    RET")
        verify_function(module.functions["f"])  # no raise

    def test_all_errors_reported_together(self):
        fn = good_function()
        fn.blocks[0].terminator.target = "nowhere"
        fn.blocks[1].label = fn.blocks[0].label
        try:
            verify_function(fn)
        except VerificationError as exc:
            message = str(exc)
        assert "dangling" in message and "duplicate" in message


class TestUseBeforeDef:
    """The opt-in definite-assignment check (check_defs=True)."""

    def test_default_mode_permits_undefined_reads(self):
        # Registers read as 0 at runtime, so this is legal by default —
        # pre-linkage code and the random program generator rely on it.
        fn = parse_function("func f(r3):\n    A r3, r3, r9\n    RET")
        verify_function(fn)

    def test_strict_mode_flags_undefined_read(self):
        fn = parse_function("func f(r3):\n    A r3, r3, r9\n    RET")
        with pytest.raises(VerificationError, match="uses r9 before definition"):
            verify_function(fn, check_defs=True)

    def test_params_and_defined_registers_accepted(self):
        fn = parse_function(
            "func f(r3, r4):\n    LI r5, 2\n    A r3, r3, r4\n    MUL r3, r3, r5\n    RET"
        )
        verify_function(fn, check_defs=True)

    def test_one_armed_definition_flagged_at_join(self):
        fn = parse_function(
            """
func f(r3):
    CI cr0, r3, 0
    BT join, cr0.lt
    LI r9, 7
join:
    A r3, r3, r9
    RET
"""
        )
        with pytest.raises(VerificationError, match="uses r9"):
            verify_function(fn, check_defs=True)

    def test_both_arms_defined_accepted_at_join(self):
        fn = parse_function(
            """
func f(r3):
    CI cr0, r3, 0
    BT other, cr0.lt
    LI r9, 7
    B join
other:
    LI r9, 8
join:
    A r3, r3, r9
    RET
"""
        )
        verify_function(fn, check_defs=True)

    def test_undefined_condition_register_flagged(self):
        fn = parse_function("func f(r3):\n    BT out, cr5.eq\nout:\n    RET")
        with pytest.raises(VerificationError, match="uses cr5"):
            verify_function(fn, check_defs=True)

    def test_undefined_ctr_flagged_and_mtctr_accepted(self):
        bad = parse_function("func f(r3):\nloop:\n    BCT loop\n    RET")
        with pytest.raises(VerificationError, match="BCT uses"):
            verify_function(bad, check_defs=True)
        good = parse_function(
            "func f(r3):\n    MTCTR r3\nloop:\n    BCT loop\n    RET"
        )
        verify_function(good, check_defs=True)

    def test_no_declared_params_fall_back_to_arg_convention(self):
        fn = parse_function("func f():\n    A r3, r3, r4\n    RET")
        verify_function(fn, check_defs=True)

    def test_verify_module_threads_check_defs(self):
        module = parse_module("func f(r3):\n    A r3, r3, r9\n    RET")
        verify_module(module)  # default: fine
        with pytest.raises(VerificationError, match="before definition"):
            verify_module(module, check_defs=True)
