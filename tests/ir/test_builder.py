from repro.ir import verify_function
from repro.ir.builder import FunctionBuilder
from repro.ir.operands import cr, gpr
from repro.ir.module import Module
from repro.machine.interpreter import run_function


def test_builder_constructs_runnable_function():
    b = FunctionBuilder("count", params=[gpr(3)])
    b.li(gpr(4), 0)
    b.mtctr(gpr(3))
    b.label("loop")
    b.addi(gpr(4), gpr(4), 2)
    b.bct("loop")
    b.label("done")
    b.lr(gpr(3), gpr(4))
    b.ret()
    fn = b.build()
    verify_function(fn)
    module = Module()
    module.add_function(fn)
    assert run_function(module, "count", [6]).value == 12


def test_implicit_entry_block():
    b = FunctionBuilder("f", params=[gpr(3)])
    b.li(gpr(3), 5)
    b.ret()
    fn = b.build()
    assert fn.entry.label == "entry"


def test_emit_after_terminator_opens_anonymous_block():
    b = FunctionBuilder("f", params=[gpr(3)])
    b.cmpi(cr(0), gpr(3), 0)
    b.bt("out", cr(0), "eq")
    b.addi(gpr(3), gpr(3), 1)  # lands in a fresh fallthrough block
    b.label("out")
    b.ret()
    fn = b.build()
    verify_function(fn)
    assert len(fn.blocks) == 3


def test_alu_helpers_cover_common_opcodes():
    b = FunctionBuilder("f", params=[gpr(3), gpr(4)])
    b.add(gpr(5), gpr(3), gpr(4))
    b.sub(gpr(6), gpr(5), gpr(4))
    b.mul(gpr(7), gpr(6), gpr(4))
    b.and_(gpr(8), gpr(7), gpr(3))
    b.or_(gpr(9), gpr(8), gpr(4))
    b.xor(gpr(3), gpr(9), gpr(3))
    b.andi(gpr(3), gpr(3), 0xFF)
    b.ret()
    fn = b.build()
    verify_function(fn)
    ops = [i.opcode for i in fn.instructions()]
    assert ops[:7] == ["A", "S", "MUL", "AND", "OR", "XOR", "ANDI"]


def test_memory_and_call_helpers():
    b = FunctionBuilder("f", params=[gpr(3)])
    b.la(gpr(4), "sym")
    b.load(gpr(5), 0, gpr(4))
    b.store(4, gpr(4), gpr(5))
    b.load(gpr(6), 4, gpr(4), update=True)
    b.call("print_int", 1)
    b.nop()
    b.ret()
    fn = b.build()
    ops = [i.opcode for i in fn.instructions()]
    assert ops == ["LA", "L", "ST", "LU", "CALL", "NOP", "RET"]
