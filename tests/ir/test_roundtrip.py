"""Printer -> parser round-trip property tests.

``format_module`` output must reparse to an identical module — same
text on a second print, same per-instruction attrs. The perf caches
(``perf/fingerprint.py``) and the fuzz corpus both lean on this: a
reduced corpus case is stored as printed text, and an attr silently
dropped on reparse (``save``, ``counter``, ``spec_depth``...) would
change how later passes treat the reloaded IR.

Inputs come from two directions: the fuzzer's generated modules
(attr-free, structurally wild) and fully compiled modules (tame CFGs,
attr-rich after linkage, scheduling and PDF instrumentation).
"""

import pytest

from repro.fuzz.generate import GenConfig, generate_module
from repro.ir import format_instr, format_module, parse_module
from repro.ir.parser import parse_instr
from repro.ir.verifier import verify_module
from repro.perf.fingerprint import fingerprint_module
from repro.pipeline import compile_module


def _attr_maps(module):
    return [
        (fn.name, bb.label, i, dict(instr.attrs))
        for fn in module.functions.values()
        for bb in fn.blocks
        for i, instr in enumerate(bb.instrs)
    ]


def _strip_falsy(maps):
    # Printed form elides falsy attrs: a pass that stored False/0 meant
    # "not set", and the reparse legitimately returns a leaner dict.
    return [
        (fn, label, i, {k: v for k, v in attrs.items() if v})
        for fn, label, i, attrs in maps
    ]


def assert_roundtrip(module):
    text = format_module(module)
    reparsed = parse_module(text)
    assert format_module(reparsed) == text
    assert _attr_maps(reparsed) == _strip_falsy(_attr_maps(module))
    assert fingerprint_module(reparsed) == fingerprint_module(
        parse_module(format_module(reparsed))
    )


@pytest.mark.parametrize("seed", range(25))
def test_generated_modules_roundtrip(seed):
    assert_roundtrip(generate_module(seed, GenConfig()))


@pytest.mark.parametrize("seed", [3, 11, 17])
@pytest.mark.parametrize("level", ["base", "vliw"])
def test_compiled_modules_roundtrip(seed, level):
    # Compiled output carries the attr-heavy instructions: linkage
    # save/restore pins, speculative loads, scheduler spec_depth and
    # rotation budgets.
    compiled = compile_module(generate_module(seed, GenConfig()), level=level)
    module = compiled.module
    assert_roundtrip(module)
    reparsed = parse_module(format_module(module))
    verify_module(reparsed)


def test_compiled_attrs_actually_present():
    # Guard the guard: if the pipelines ever stop producing attrs the
    # compiled round-trip tests would silently weaken to the plain case.
    compiled = compile_module(generate_module(3, GenConfig()), level="vliw")
    keys = {
        key
        for _, _, _, attrs in _attr_maps(compiled.module)
        for key in attrs
    }
    assert "save" in keys and "restore" in keys


class TestAttrSyntax:
    def test_bare_key_parses_true(self):
        instr = parse_instr("L r3, 4(r5) !spec !cached")
        assert instr.attrs == {"speculative": True, "cached": True}

    def test_valued_key_parses_int(self):
        instr = parse_instr("A r3, r4, r5 !spec_depth=2 !rotations=1")
        assert instr.attrs == {"spec_depth": 2, "rotations": 1}

    def test_spec_short_form_round_trips(self):
        instr = parse_instr("L r3, 4(r5) !spec")
        assert instr.attrs.get("speculative") is True
        assert format_instr(instr) == "L r3, 4(r5) !spec"

    def test_printed_order_is_sorted_and_stable(self):
        instr = parse_instr("ST 8(r1), r30 !save !pinned")
        assert format_instr(instr) == "ST 8(r1), r30 !pinned !save"
        assert format_instr(parse_instr(format_instr(instr))) == format_instr(instr)

    def test_falsy_attrs_elided(self):
        instr = parse_instr("NOP")
        instr.attrs["rotations"] = 0
        instr.attrs["counter"] = False
        assert format_instr(instr) == "NOP"
