import pytest

from repro.ir import BasicBlock, Function, Module, parse_function
from repro.ir.instructions import make_b, make_bt, make_li, make_ret
from repro.ir.operands import cr, gpr

DIAMOND = """
func f(r3):
entry:
    CI cr0, r3, 0
    BT right, cr0.lt
left:
    LI r4, 1
    B join
right:
    LI r4, 2
join:
    LR r3, r4
    RET
"""


class TestBasicBlock:
    def test_terminator_detection(self):
        bb = BasicBlock("x", [make_li(gpr(3), 1), make_ret()])
        assert bb.terminator is not None
        assert bb.terminator.is_return
        assert len(bb.body) == 1

    def test_no_terminator(self):
        bb = BasicBlock("x", [make_li(gpr(3), 1)])
        assert bb.terminator is None
        assert bb.falls_through

    def test_falls_through_rules(self):
        assert BasicBlock("x", [make_bt("y", cr(0), "eq")]).falls_through
        assert not BasicBlock("x", [make_b("y")]).falls_through
        assert not BasicBlock("x", [make_ret()]).falls_through

    def test_clone_is_deep(self):
        bb = BasicBlock("x", [make_li(gpr(3), 1)])
        c = bb.clone("y")
        assert c.label == "y"
        assert c.instrs[0] is not bb.instrs[0]
        assert c.instrs[0].imm == 1

    def test_index_of_uses_identity(self):
        a, b = make_li(gpr(3), 1), make_li(gpr(3), 1)
        bb = BasicBlock("x", [a, b])
        assert bb.index_of(b) == 1


class TestFunctionCFG:
    def test_successors_of_diamond(self):
        fn = parse_function(DIAMOND)
        entry = fn.block("entry")
        succs = [b.label for b in fn.successors(entry)]
        assert succs == ["right", "left"]  # taken target first
        assert [b.label for b in fn.successors(fn.block("left"))] == ["join"]
        assert fn.successors(fn.block("join")) == []

    def test_predecessors(self):
        fn = parse_function(DIAMOND)
        preds = sorted(b.label for b in fn.predecessors(fn.block("join")))
        assert preds == ["left", "right"]

    def test_edges(self):
        fn = parse_function(DIAMOND)
        edges = {(a.label, b.label) for a, b in fn.edges()}
        assert ("entry", "left") in edges
        assert ("entry", "right") in edges
        assert ("left", "join") in edges
        assert ("right", "join") in edges

    def test_layout_successor(self):
        fn = parse_function(DIAMOND)
        assert fn.layout_successor(fn.block("entry")).label == "left"
        assert fn.layout_successor(fn.block("join")) is None

    def test_new_label_unique(self):
        fn = parse_function(DIAMOND)
        labels = {fn.new_label("x") for _ in range(10)}
        assert len(labels) == 10

    def test_add_block_rejects_duplicates(self):
        fn = parse_function(DIAMOND)
        with pytest.raises(ValueError):
            fn.add_block(BasicBlock("entry"))

    def test_clone_independent(self):
        fn = parse_function(DIAMOND)
        copy = fn.clone()
        copy.block("left").instrs.clear()
        assert len(fn.block("left").instrs) == 2


class TestNewVreg:
    def test_distinct_back_to_back(self):
        fn = parse_function(DIAMOND)
        a = fn.new_vreg("gpr")
        b = fn.new_vreg("gpr")
        assert a != b

    def test_avoids_used_registers(self):
        fn = parse_function(DIAMOND)
        used = {gpr(3), gpr(4)}
        for _ in range(5):
            assert fn.new_vreg("gpr") not in used

    def test_leaf_function_stays_volatile(self):
        fn = parse_function(DIAMOND)
        for _ in range(8):
            reg = fn.new_vreg("gpr")
            assert not reg.is_callee_saved

    def test_include_callee_saved_extends_pool(self):
        fn = parse_function(DIAMOND)
        regs = [fn.new_vreg("gpr", include_callee_saved=True) for _ in range(15)]
        assert any(r.is_callee_saved for r in regs)

    def test_exhaustion_raises(self):
        fn = parse_function(DIAMOND)
        with pytest.raises(RuntimeError):
            for _ in range(40):
                fn.new_vreg("gpr")


class TestModule:
    def test_layout_is_disjoint_and_stable(self):
        m = Module()
        m.add_data("b", 100)
        m.add_data("a", 8)
        layout = m.layout()
        assert layout == m.layout()
        spans = m.symbol_spans()
        sa, sb = spans["a"], spans["b"]
        assert set(sa).isdisjoint(set(sb))

    def test_duplicate_data_rejected(self):
        m = Module()
        m.add_data("a", 4)
        with pytest.raises(ValueError):
            m.add_data("a", 4)

    def test_init_larger_than_size_rejected(self):
        m = Module()
        with pytest.raises(ValueError):
            m.add_data("a", 4, init=[1, 2, 3])

    def test_clone_deep(self):
        m = Module()
        m.add_data("a", 8, init=[1])
        fn = Function("f", [gpr(3)])
        fn.add_block(BasicBlock("entry", [make_ret()]))
        m.add_function(fn)
        c = m.clone()
        c.data["a"].init[0] = 99
        c.functions["f"].blocks[0].instrs.clear()
        assert m.data["a"].init == [1]
        assert len(m.functions["f"].blocks[0].instrs) == 1
