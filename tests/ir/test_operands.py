import pytest

from repro.ir.operands import (
    ARG_REGS,
    CALL_CLOBBERED,
    CALLEE_SAVED,
    CTR,
    Reg,
    SP,
    TOC,
    cr,
    gpr,
    parse_reg,
)


def test_gpr_construction():
    r = gpr(5)
    assert r.kind == "gpr"
    assert r.index == 5
    assert r.name == "r5"
    assert str(r) == "r5"


def test_cr_construction():
    c = cr(3)
    assert c.kind == "cr"
    assert c.name == "cr3"


def test_ctr_is_singleton_register():
    assert CTR.kind == "ctr"
    assert CTR.name == "ctr"


@pytest.mark.parametrize("index", [-1, 32, 100])
def test_gpr_index_out_of_range(index):
    with pytest.raises(ValueError):
        gpr(index)


@pytest.mark.parametrize("index", [-1, 8])
def test_cr_index_out_of_range(index):
    with pytest.raises(ValueError):
        cr(index)


def test_bad_kind_rejected():
    with pytest.raises(ValueError):
        Reg("fpr", 0)


def test_registers_are_value_objects():
    assert gpr(4) == gpr(4)
    assert gpr(4) != gpr(5)
    assert gpr(4) != cr(4)
    assert len({gpr(4), gpr(4), cr(4)}) == 2


def test_callee_saved_classification():
    assert gpr(13).is_callee_saved
    assert gpr(31).is_callee_saved
    assert not gpr(12).is_callee_saved
    assert not cr(3).is_callee_saved
    assert set(CALLEE_SAVED) == {gpr(i) for i in range(13, 32)}


def test_arg_registers():
    assert ARG_REGS[0] == gpr(3)
    assert ARG_REGS[-1] == gpr(10)
    assert len(ARG_REGS) == 8


def test_call_clobbered_excludes_sp_toc_and_callee_saved():
    assert SP not in CALL_CLOBBERED
    assert TOC not in CALL_CLOBBERED
    for reg in CALLEE_SAVED:
        assert reg not in CALL_CLOBBERED
    assert gpr(0) in CALL_CLOBBERED
    assert cr(0) in CALL_CLOBBERED
    assert CTR in CALL_CLOBBERED


@pytest.mark.parametrize(
    "text,expected",
    [("r0", gpr(0)), ("r31", gpr(31)), ("cr7", cr(7)), ("ctr", CTR), (" r5 ", gpr(5))],
)
def test_parse_reg(text, expected):
    assert parse_reg(text) == expected


@pytest.mark.parametrize("text", ["", "x5", "r32", "cr8", "r", "5"])
def test_parse_reg_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_reg(text)
