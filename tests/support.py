"""Shared test infrastructure.

The core correctness tool is *differential execution*: run a function
before and after a transformation on identical inputs and require the
same return value, memory effects and I/O. ``random_program`` generates
structured, always-terminating programs (arithmetic, memory traffic on a
data object, nested diamonds, bounded counted loops) for property-based
testing of every pass.
"""

import random
from typing import Iterable, List, Optional, Sequence

from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.machine.interpreter import run_function


def run(module: Module, fn: str, args: Sequence[int], max_steps: int = 400_000):
    return run_function(module, fn, list(args), max_steps=max_steps)


def assert_equivalent(
    before: Module,
    after: Module,
    fn: str,
    argsets: Iterable[Sequence[int]],
    check_memory: bool = True,
    max_steps: int = 400_000,
    context: str = "",
):
    """Both modules must behave identically on every argument set."""
    for args in argsets:
        r0 = run(before, fn, args, max_steps)
        r1 = run(after, fn, args, max_steps)
        note = f" [{context}]" if context else ""
        assert r1.value == r0.value, (
            f"{fn}{tuple(args)}{note}: value {r1.value} != {r0.value}"
        )
        assert r1.output == r0.output, (
            f"{fn}{tuple(args)}{note}: output differs"
        )
        if check_memory:
            m0 = r0.state.snapshot_mem()
            m1 = r1.state.snapshot_mem()
            assert m1 == m0, f"{fn}{tuple(args)}{note}: memory differs"


def parse(source: str) -> Module:
    return parse_module(source)


# ---------------------------------------------------------------------------
# Random structured program generation
# ---------------------------------------------------------------------------

_VALUE_REGS = ["r3", "r4", "r5", "r6", "r7", "r8"]
_ALU_RR = ["A", "S", "MUL", "AND", "OR", "XOR"]
_ALU_RI = ["AI", "SI", "MULI", "ANDI", "ORI", "XORI"]
_CONDS = ["eq", "ne", "lt", "le", "gt", "ge"]

DATA_WORDS = 16


class _Gen:
    """Emits one structured random function as parseable text."""

    def __init__(self, rng: random.Random, max_depth: int = 2, size: int = 14):
        self.rng = rng
        self.max_depth = max_depth
        self.budget = size
        self.lines: List[str] = []
        self.label_counter = 0
        self.cr_counter = 0
        self.loop_reg_counter = 0

    def fresh_label(self, hint: str) -> str:
        self.label_counter += 1
        return f"{hint}{self.label_counter}"

    def fresh_cr(self) -> str:
        self.cr_counter = (self.cr_counter + 1) % 8
        return f"cr{self.cr_counter}"

    def emit(self, text: str, indent: bool = True) -> None:
        self.lines.append(("    " if indent else "") + text)

    def reg(self) -> str:
        return self.rng.choice(_VALUE_REGS)

    def offset(self) -> int:
        return 4 * self.rng.randrange(DATA_WORDS)

    def gen_statement(self, depth: int) -> None:
        if self.budget <= 0:
            return
        self.budget -= 1
        rng = self.rng
        choice = rng.random()
        if choice < 0.35:
            op = rng.choice(_ALU_RR)
            self.emit(f"{op} {self.reg()}, {self.reg()}, {self.reg()}")
        elif choice < 0.55:
            op = rng.choice(_ALU_RI)
            self.emit(f"{op} {self.reg()}, {self.reg()}, {rng.randrange(-8, 9)}")
        elif choice < 0.65:
            self.emit(f"L {self.reg()}, {self.offset()}(r10)")
        elif choice < 0.75:
            self.emit(f"ST {self.offset()}(r10), {self.reg()}")
        elif choice < 0.9 and depth < self.max_depth:
            self.gen_diamond(depth)
        elif depth < self.max_depth:
            self.gen_loop(depth)
        else:
            self.emit(f"LR {self.reg()}, {self.reg()}")

    def gen_block(self, depth: int, n: int) -> None:
        for _ in range(n):
            self.gen_statement(depth)

    def gen_diamond(self, depth: int) -> None:
        rng = self.rng
        cr = self.fresh_cr()
        else_label = self.fresh_label("els")
        join_label = self.fresh_label("join")
        self.emit(f"CI {cr}, {self.reg()}, {rng.randrange(-4, 5)}")
        self.emit(f"BT {else_label}, {cr}.{rng.choice(_CONDS)}")
        self.gen_block(depth + 1, rng.randrange(1, 4))
        if rng.random() < 0.6:
            self.emit(f"B {join_label}")
            self.emit(f"{else_label}:", indent=False)
            self.gen_block(depth + 1, rng.randrange(1, 4))
            self.emit(f"{join_label}:", indent=False)
            self.emit("NOP")
        else:  # triangle
            self.emit(f"{else_label}:", indent=False)
            self.emit("NOP")

    def gen_loop(self, depth: int) -> None:
        rng = self.rng
        # A dedicated counter register keeps the loop bounded no matter
        # what the body does to the value registers.
        counter = f"r{20 + self.loop_reg_counter}"
        self.loop_reg_counter = (self.loop_reg_counter + 1) % 8
        cr = self.fresh_cr()
        head = self.fresh_label("loop")
        trips = rng.randrange(1, 5)
        self.emit(f"LI {counter}, {trips}")
        self.emit(f"{head}:", indent=False)
        self.gen_block(depth + 1, rng.randrange(1, 4))
        self.emit(f"AI {counter}, {counter}, -1")
        self.emit(f"CI {cr}, {counter}, 0")
        self.emit(f"BF {head}, {cr}.eq")

    def generate(self) -> str:
        self.emit("func f(r3, r4):", indent=False)
        self.emit("LA r10, data")
        while self.budget > 0:
            self.gen_statement(0)
        # Fold state into the return value so differences are observable.
        self.emit("A r3, r3, r4")
        self.emit("XOR r3, r3, r5")
        self.emit("A r3, r3, r6")
        self.emit("RET")
        return "\n".join(self.lines)


def random_program(seed: int, size: int = 14, max_depth: int = 2) -> Module:
    """A random structured module with one function ``f(r3, r4)``."""
    rng = random.Random(seed)
    text = _Gen(rng, max_depth=max_depth, size=size).generate()
    source = (
        f"data data: size={4 * DATA_WORDS} "
        f"init=[{', '.join(str(rng.randrange(-50, 50)) for _ in range(DATA_WORDS))}]\n"
        + text
    )
    return parse_module(source)


def standard_argsets() -> List[List[int]]:
    return [[0, 0], [1, 2], [-5, 17], [123456, -7], [3, 3]]
