"""The Bernstein-Rodeh comparison scheduler and its constraints."""

from repro.ir import parse_module, verify_module
from repro.scheduling import GlobalScheduling
from repro.scheduling.related_work import BernsteinRodehScheduling
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, random_program, standard_argsets

TWO_BRANCH = """
data a: size=32 init=[5, 6, 7, 8]

func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT out1, cr0.le
mid:
    CI cr1, r3, 10
    BT out2, cr1.ge
deep:
    L r4, 0(r9)
    L r5, 4(r9)
    A r3, r4, r5
    RET
out1:
    LI r3, -1
    RET
out2:
    LI r3, -2
    RET
"""


PROFITABLE_ONE_LEVEL = """
data a: size=32 init=[5, 6, 7, 8]

func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT out1, cr0.le
mid:
    L r4, 0(r9)
    L r5, 4(r9)
    A r3, r4, r5
    RET
out1:
    LI r3, -1
    RET
"""


class TestSpeculationDepthCap:
    def _preset_depth(self, module, depth):
        for instr in module.functions["f"].instructions():
            if instr.is_load:
                instr.attrs["spec_depth"] = depth

    def test_full_scheduler_has_no_depth_cap(self):
        # Mark the loads as already once-speculated: the unconstrained
        # scheduler still hoists them above the next branch.
        module = parse_module(PROFITABLE_ONE_LEVEL)
        self._preset_depth(module, 1)
        ctx = PassContext(module)
        GlobalScheduling(rounds=4).run_on_module(module, ctx)
        verify_module(module)
        entry = module.functions["f"].blocks[0]
        assert any(i.is_load for i in entry.instrs)
        assert max(
            i.attrs.get("spec_depth", 0)
            for i in module.functions["f"].instructions()
        ) >= 2

    def test_bernstein_rodeh_refuses_second_level(self):
        module = parse_module(PROFITABLE_ONE_LEVEL)
        self._preset_depth(module, 1)
        ctx = PassContext(module)
        BernsteinRodehScheduling().run_on_module(module, ctx)
        entry = module.functions["f"].blocks[0]
        assert not any(i.is_load for i in entry.instrs)

    def test_bernstein_rodeh_takes_the_first_level(self):
        module = parse_module(PROFITABLE_ONE_LEVEL)
        ctx = PassContext(module)
        BernsteinRodehScheduling().run_on_module(module, ctx)
        entry = module.functions["f"].blocks[0]
        assert any(i.is_load for i in entry.instrs)

    def test_bernstein_rodeh_stops_at_one(self):
        module = parse_module(TWO_BRANCH)
        ctx = PassContext(module)
        BernsteinRodehScheduling().run_on_module(module, ctx)
        verify_module(module)
        depths = [
            i.attrs.get("spec_depth", 0) for i in module.functions["f"].instructions()
        ]
        assert max(depths) <= 1

    def test_both_preserve_semantics(self):
        for scheduler in (GlobalScheduling(), BernsteinRodehScheduling()):
            before = parse_module(TWO_BRANCH)
            after = parse_module(TWO_BRANCH)
            scheduler.run_on_module(after, PassContext(after))
            assert_equivalent(
                before, after, "f", [[5], [0], [20]], context=scheduler.name
            )


class TestNoBookkeeping:
    JOIN = """
data a: size=16 init=[3, 4]

func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT right, cr0.lt
left:
    AI r3, r3, 1
    B join
right:
    AI r3, r3, 2
join:
    L r4, 0(r9)
    A r3, r3, r4
    RET
"""

    def test_join_hoist_declined_without_duplication(self):
        module = parse_module(self.JOIN)
        ctx = PassContext(module)
        BernsteinRodehScheduling().run_on_module(module, ctx)
        assert ctx.stats.get("global-sched.bookkeeping-copies", 0) == 0
        # The join block keeps its load.
        join = module.functions["f"].block("join")
        assert any(i.is_load for i in join.instrs)

    def test_full_scheduler_duplicates(self):
        module = parse_module(self.JOIN)
        ctx = PassContext(module)
        GlobalScheduling().run_on_module(module, ctx)
        # The full framework may take the hoist (with copies) when it pays;
        # either way semantics hold.
        before = parse_module(self.JOIN)
        assert_equivalent(before, module, "f", [[5], [-5]])


class TestRandomised:
    def test_preserves_semantics_on_random_programs(self):
        for seed in range(10):
            before = random_program(seed)
            after = random_program(seed)
            BernsteinRodehScheduling().run_on_module(after, PassContext(after))
            verify_module(after)
            assert_equivalent(
                before, after, "f", standard_argsets(), context=f"seed={seed}"
            )
