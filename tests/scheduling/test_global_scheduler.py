"""Global scheduling with bookkeeping copies + software pipelining."""

from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.scheduling import GlobalScheduling, LocalScheduling, VLIWScheduling
from repro.transforms import LiveRangeRenaming, LoopUnroll
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent, standard_argsets

LI_LOOP = """
data nodes: size=4096
data cells: size=4096

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""


def li_module(n=60):
    m = parse_module(LI_LOOP)
    lay = m.layout()
    nodes, cells = lay["nodes"], lay["cells"]
    node_init = [0] * (3 * n)
    cell_init = [0] * (2 * n)
    for i in range(n):
        node_init[3 * i + 1] = cells + 8 * i
        node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < n else 0
        cell_init[2 * i + 1] = 100 + i
    m.data["nodes"].init = node_init
    m.data["cells"].init = cell_init
    return m, nodes, n


def cycles_per_iter(module, nodes, n):
    r = run_function(module, "xlygetvalue", [100 + n - 1, nodes], record_trace=True)
    return time_trace(r.trace, RS6000).cycles / n


class TestSpeculativeHoisting:
    SRC = """
data a: size=32 init=[5, 6, 7, 8]

func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT skip, cr0.le
take:
    L r4, 0(r9)
    AI r4, r4, 1
    A r3, r3, r4
    RET
skip:
    LI r3, -1
    RET
"""

    def test_semantics_preserved(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        GlobalScheduling().run_on_module(after, PassContext(after))
        verify_module(after)
        assert_equivalent(before, after, "f", [[1], [0], [-1], [10]])

    def test_load_hoisted_above_branch(self):
        after = parse_module(self.SRC)
        ctx = PassContext(after)
        GlobalScheduling().run_on_module(after, ctx)
        # The load from the taken side fills the compare-to-branch gap.
        entry = after.functions["f"].blocks[0]
        assert any(i.is_load for i in entry.instrs)

    def test_never_hoists_store_speculatively(self):
        src = """
data a: size=8
func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT skip, cr0.le
take:
    ST 0(r9), r3
    RET
skip:
    LI r3, -1
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        GlobalScheduling().run_on_module(after, PassContext(after))
        entry = after.functions["f"].blocks[0]
        assert not any(i.is_store for i in entry.instrs)
        assert_equivalent(before, after, "f", [[1], [0]])

    def test_respects_live_out_on_other_path(self):
        src = """
func f(r3):
    LI r4, 100
    CI cr0, r3, 0
    BT other, cr0.le
take:
    LI r4, 1
    A r3, r3, r4
    RET
other:
    A r3, r3, r4
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        GlobalScheduling().run_on_module(after, PassContext(after))
        assert_equivalent(before, after, "f", [[1], [0], [-1]])


class TestBookkeepingCopies:
    def test_hoist_from_join_duplicates_on_other_edge(self):
        src = """
data a: size=16 init=[3, 4, 5, 6]
func f(r3):
    LA r9, a
    CI cr0, r3, 0
    BT right, cr0.lt
left:
    AI r3, r3, 1
    B join
right:
    AI r3, r3, 2
join:
    L r4, 0(r9)
    L r5, 4(r9)
    A r6, r4, r5
    A r3, r3, r6
    RET
"""
        before = parse_module(src)
        after = parse_module(src)
        ctx = PassContext(after)
        GlobalScheduling().run_on_module(after, ctx)
        verify_module(after)
        assert_equivalent(before, after, "f", [[5], [-5], [0]])
        if ctx.stats.get("global-sched.bookkeeping-copies", 0):
            # Every path still computes the hoisted op exactly once.
            for arg in (5, -5):
                r = run_function(after, "f", [arg], record_trace=True)
                loads = [i for i, _ in r.trace if i.is_load]
                assert len(loads) == 2


class TestSoftwarePipelining:
    def test_li_figure_progression(self):
        """Paper figure: 11 cyc/iter -> ~7 (global) -> lower (pipelined)."""
        m0, nodes, n = li_module()
        baseline = cycles_per_iter(m0, nodes, n)
        assert abs(baseline - 11.0) < 0.5

        m1, nodes, n = li_module()
        ctx = PassContext(m1)
        VLIWScheduling(unroll_factor=2, software_pipelining=False).run_on_module(m1, ctx)
        verify_module(m1)
        global_only = cycles_per_iter(m1, nodes, n)

        m2, nodes, n = li_module()
        ctx2 = PassContext(m2)
        VLIWScheduling(unroll_factor=2, software_pipelining=True).run_on_module(m2, ctx2)
        verify_module(m2)
        pipelined = cycles_per_iter(m2, nodes, n)

        assert global_only < baseline * 0.8  # clearly better
        assert pipelined < global_only  # pipelining wins again
        assert ctx2.stats.get("global-sched.pipelined-ops", 0) > 0

    def test_pipelined_loop_correct_on_all_outcomes(self):
        m2, nodes, n = li_module()
        VLIWScheduling().run_on_module(m2, PassContext(m2))
        verify_module(m2)
        ref, _, _ = li_module()
        for target in (100, 101, 100 + n - 1, 100 + n // 2, 987654):
            r0 = run_function(ref, "xlygetvalue", [target, nodes])
            r1 = run_function(m2, "xlygetvalue", [target, nodes])
            assert r0.value == r1.value, target

    def test_prolog_copies_on_entry_edge(self):
        m2, nodes, n = li_module()
        ctx = PassContext(m2)
        VLIWScheduling().run_on_module(m2, ctx)
        if ctx.stats.get("global-sched.pipelined-ops", 0):
            assert ctx.stats.get("global-sched.bookkeeping-copies", 0) > 0

    def test_rotation_bound_respected(self):
        m2, _, _ = li_module()
        gs = GlobalScheduling(max_rotations=1, rounds=10)
        LoopUnroll().run_on_module(m2, PassContext(m2))
        LiveRangeRenaming().run_on_module(m2, PassContext(m2))
        gs.run_on_module(m2, PassContext(m2))
        for instr in m2.functions["xlygetvalue"].instructions():
            assert instr.attrs.get("rotations", 0) <= 1


class TestRandomisedEquivalence:
    def test_vliw_scheduling_on_random_programs(self):
        from support import random_program

        for seed in range(12):
            before = random_program(seed, size=12)
            after = random_program(seed, size=12)
            ctx = PassContext(after)
            VLIWScheduling().run_on_module(after, ctx)
            verify_module(after)
            assert_equivalent(
                before, after, "f", standard_argsets(), context=f"seed={seed}"
            )
