"""Modulo scheduler: II bounds, reservation tables, end-to-end safety.

The property contract of ``repro.scheduling.modulo``:

- the achieved II of any produced schedule is >= max(ResMII, RecMII)
  and every dependence edge is honoured at that II;
- a :class:`ReservationTable` never oversubscribes a unit pool or the
  issue width in any kernel slot — ``reserve`` raises instead;
- the optimal backend never returns a worse II than the heuristic;
- a module compiled with ``pipeliner="modulo"`` behaves identically to
  the unpipelined original on both memory models (the prologue the
  rotations materialise included);
- the backend knob is validated, reaches the sweep / the wire format,
  and the composite pass reports ``changed`` from content, not from
  sub-pass chatter.
"""

import pytest

from repro.analysis.alias import MemoryModel
from repro.analysis.loops import find_natural_loops
from repro.ir import format_module, parse_module, verify_module
from repro.machine.model import RS6000
from repro.pipeline import compile_module
from repro.robustness.diffcheck import observe
from repro.scheduling import ModuloScheduling, PIPELINERS, VLIWScheduling
from repro.scheduling.modulo import (
    KernelDep,
    ReservationTable,
    kernel_dependences,
    modulo_schedule,
    optimal_modulo_schedule,
    rec_mii,
    res_mii,
)
from repro.transforms.pass_manager import PassContext, PassManager
from tests.support import random_program, standard_argsets

from repro.workloads import suite

WORKLOADS = {w.name: w for w in suite()}


# ---------------------------------------------------------------------------
# Reservation tables
# ---------------------------------------------------------------------------


class TestReservationTable:
    def test_refuses_unit_oversubscription(self):
        table = ReservationTable(4, RS6000)
        # RS6000's shared FXU admits fxu_units ops per slot, no more.
        for _ in range(RS6000.fxu_units):
            assert table.fits(2, "fxu")
            table.reserve(2, "fxu")
        assert not table.fits(2, "fxu")
        with pytest.raises(ValueError):
            table.reserve(2, "fxu")
        # The same cycle modulo II is the same slot.
        assert not table.fits(6, "fxu")
        assert not table.oversubscribed()

    def test_refuses_width_oversubscription(self):
        table = ReservationTable(1, RS6000)
        reserved = 0
        for key in ("fxu", "branch") * RS6000.issue_width:
            if not table.fits(0, key):
                break
            table.reserve(0, key)
            reserved += 1
        assert reserved <= RS6000.issue_width
        assert not table.oversubscribed()

    def test_release_frees_the_slot(self):
        table = ReservationTable(2, RS6000)
        table.reserve(1, "branch")
        got = table.occupancy()
        assert got[1]["branch"] == 1
        table.release(1, "branch")
        assert table.fits(1, "branch")
        with pytest.raises(ValueError):
            table.release(1, "branch")

    def test_rejects_degenerate_ii(self):
        with pytest.raises(ValueError):
            ReservationTable(0, RS6000)


# ---------------------------------------------------------------------------
# II lower bounds
# ---------------------------------------------------------------------------


class TestBounds:
    def test_rec_mii_of_simple_recurrence(self):
        # A self-recurrence of latency 3 across one iteration forces
        # II >= 3; an acyclic graph forces nothing.
        edges = [KernelDep(0, 1, 3, 0), KernelDep(1, 0, 3, 1)]
        assert rec_mii(2, edges) == 6
        assert rec_mii(2, [KernelDep(0, 1, 3, 0)]) == 1

    def test_res_mii_counts_the_shared_fxu(self):
        m = parse_module(
            """
func f(r3):
    AI r3, r3, 1
    AI r3, r3, 2
    AI r3, r3, 3
    RET
"""
        )
        seq = [x for x in m.function("f").blocks[0].instrs if not x.is_return]
        # Three int ops through a shared FXU of width fxu_units.
        expected = -(-3 // RS6000.fxu_units)
        assert res_mii(seq, RS6000) == max(expected, -(-3 // RS6000.issue_width))


def _loop_kernels(module, max_len=48):
    """Linearised innermost-loop kernels of every function in ``module``."""
    kernels = []
    for fn in module.functions.values():
        loops = find_natural_loops(fn)
        parents = {id(lp.parent) for lp in loops if lp.parent is not None}
        memory = MemoryModel(fn, module)
        for lp in loops:
            if id(lp) in parents:
                continue
            seq = [x for bb in lp.blocks(fn) for x in bb.instrs]
            if 2 <= len(seq) <= max_len:
                kernels.append((seq, memory))
    return kernels


class TestScheduleProperties:
    @pytest.mark.parametrize("seed", range(12))
    def test_achieved_ii_respects_bounds(self, seed):
        module = random_program(seed, size=20)
        found = False
        for seq, memory in _loop_kernels(module):
            edges = kernel_dependences(seq, memory, RS6000)
            mii = max(res_mii(seq, RS6000), rec_mii(len(seq), edges))
            sched = modulo_schedule(seq, edges, RS6000, mii=mii)
            if sched is None:
                continue
            found = True
            assert sched.ii >= mii
            assert sched.verify(edges), "dependence violated at achieved II"
            assert not sched.table.oversubscribed()
            # Every op occupies exactly one reserved slot.
            assert len(sched.times) == len(seq)
            assert all(t is not None and t >= 0 for t in sched.times)
        if seed == 0:
            assert found or not _loop_kernels(module)

    @pytest.mark.parametrize("name", ["compress", "eqntott", "li"])
    def test_workload_kernels_schedule_at_bounded_ii(self, name):
        module = WORKLOADS[name].fresh_module()
        kernels = _loop_kernels(module)
        assert kernels, f"{name} should expose at least one innermost loop"
        for seq, memory in kernels:
            edges = kernel_dependences(seq, memory, RS6000)
            mii = max(res_mii(seq, RS6000), rec_mii(len(seq), edges))
            sched = modulo_schedule(seq, edges, RS6000, mii=mii)
            assert sched is not None
            assert sched.ii >= mii
            assert sched.verify(edges)

    @pytest.mark.parametrize("seed", range(8))
    def test_optimal_never_worse_than_heuristic(self, seed):
        module = random_program(seed, size=16)
        for seq, memory in _loop_kernels(module, max_len=12):
            edges = kernel_dependences(seq, memory, RS6000)
            mii = max(res_mii(seq, RS6000), rec_mii(len(seq), edges))
            heur = modulo_schedule(seq, edges, RS6000, mii=mii)
            if heur is None:
                continue
            opt = optimal_modulo_schedule(
                seq, edges, RS6000, mii=mii, ii_limit=heur.ii
            )
            if opt is not None:
                assert opt.ii <= heur.ii
                assert opt.verify(edges)
                assert not opt.table.oversubscribed()


# ---------------------------------------------------------------------------
# Pipelined == unpipelined, both memory models
# ---------------------------------------------------------------------------


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("pipeliner", ["modulo", "modulo-opt"])
    @pytest.mark.parametrize("mem_model", ["flat", "paged"])
    @pytest.mark.parametrize(
        "name", ["compress", "eqntott", "li", "espresso", "sc", "gcc"]
    )
    def test_workloads(self, name, mem_model, pipeliner):
        wl = WORKLOADS[name]
        reference = wl.fresh_module()
        compiled = compile_module(
            wl.fresh_module(), level="vliw", pipeliner=pipeliner
        ).module
        verify_module(compiled)
        base = observe(reference, wl.entry, tuple(wl.args), 2_000_000, mem_model)
        after = observe(compiled, wl.entry, tuple(wl.args), 2_000_000, mem_model)
        assert after.kind == base.kind == "ok"
        assert after.value == base.value
        assert after.output == base.output

    @pytest.mark.parametrize("seed", range(10))
    def test_random_loops(self, seed):
        module = random_program(seed, size=20)
        compiled = compile_module(
            module.clone(), level="vliw", pipeliner="modulo"
        ).module
        verify_module(compiled)
        for mem_model in ("flat", "paged"):
            for args in standard_argsets():
                base = observe(module, "f", tuple(args), 400_000, mem_model)
                after = observe(compiled, "f", tuple(args), 400_000, mem_model)
                assert after.kind == base.kind, (seed, mem_model, args)
                if base.kind == "ok":
                    assert after.value == base.value, (seed, mem_model, args)
                    assert after.output == base.output, (seed, mem_model, args)


# ---------------------------------------------------------------------------
# The composite pass and the knob
# ---------------------------------------------------------------------------


class TestVLIWSchedulingBackend:
    def test_rejects_unknown_pipeliner(self):
        with pytest.raises(ValueError):
            VLIWScheduling(pipeliner="simd")

    def test_backends_are_exported(self):
        assert PIPELINERS == ("swp", "modulo", "modulo-opt")

    def test_changed_reporting_survives_mutate_then_revert(self):
        # A loop the modulo backend considers and rolls back: sub-passes
        # mutate (unroll, rename, schedule) and the net result may still
        # equal the swp path's output. ``changed`` must reflect *content*
        # — compare against what the pass actually did, not what its
        # sub-passes reported along the way.
        wl = WORKLOADS["compress"]
        module = wl.fresh_module()
        fn = module.function(wl.entry)
        ctx = PassContext(module)
        sched = VLIWScheduling(unroll_factor=2, pipeliner="modulo")
        before = format_module(module)
        changed = sched.run_on_function(fn, ctx)
        assert changed == (format_module(module) != before)

    def test_changed_false_when_nothing_to_do(self):
        # A straight-line function: unrolling, pipelining and the modulo
        # pass all decline; local scheduling keeps the single ordering.
        module = parse_module(
            """
func f(r3):
    AI r3, r3, 1
    RET
"""
        )
        fn = module.function("f")
        ctx = PassContext(module)
        sched = VLIWScheduling(unroll_factor=2, pipeliner="modulo")
        assert sched.run_on_function(fn, ctx) is False
        # And an immediate re-run of a changing config is idempotent.
        wl = WORKLOADS["eqntott"]
        module = wl.fresh_module()
        fn = module.function(wl.entry)
        ctx = PassContext(module)
        sched = VLIWScheduling(unroll_factor=2, pipeliner="modulo")
        sched.run_on_function(fn, ctx)
        before = format_module(module)
        changed_again = sched.run_on_function(fn, ctx)
        assert changed_again == (format_module(module) != before)

    def test_modulo_pass_rolls_back_unprofitable_loops(self):
        # eqntott's diamond loop resists legal rotation: the pass must
        # leave the function bit-identical rather than pessimise it.
        wl = WORKLOADS["eqntott"]
        module = compile_module(
            wl.fresh_module(), level="vliw", pipeliner="swp"
        ).module
        snapshot = format_module(module)
        fn = module.function(wl.entry)
        ctx = PassContext(module)
        changed = ModuloScheduling().run_on_function(fn, ctx)
        if not changed:
            assert format_module(module) == snapshot


class TestParallelDeterminismModulo:
    @pytest.mark.parametrize("name", ["compress", "li", "eqntott"])
    def test_jobs4_matches_serial(self, name):
        wl = WORKLOADS[name]
        serial = compile_module(
            wl.fresh_module(), "vliw", jobs=1, pipeliner="modulo"
        )
        parallel = compile_module(
            wl.fresh_module(), "vliw", jobs=4, pipeliner="modulo"
        )
        assert format_module(parallel.module) == format_module(serial.module)
        assert parallel.ctx.stats == serial.ctx.stats

    def test_repeated_compiles_are_bit_identical(self):
        wl = WORKLOADS["compress"]
        texts = {
            format_module(
                compile_module(
                    wl.fresh_module(), "vliw", pipeliner="modulo"
                ).module
            )
            for _ in range(3)
        }
        assert len(texts) == 1
