"""Local list scheduling."""

from repro.ir import parse_function, parse_module, verify_module
from repro.machine.model import POWER2, RS6000
from repro.scheduling import LocalScheduling, schedule_block
from repro.transforms.pass_manager import PassContext

from support import assert_equivalent


class TestScheduleBlock:
    def test_preserves_instruction_multiset(self):
        fn = parse_function(
            """
func f(r3):
    L r4, 0(r3)
    LI r5, 7
    AI r6, r4, 1
    A r3, r5, r6
    RET
"""
        )
        instrs = fn.blocks[0].instrs
        order, _ = schedule_block(instrs, RS6000)
        assert sorted(i.uid for i in order) == sorted(i.uid for i in instrs)

    def test_terminator_stays_last(self):
        fn = parse_function(
            "func f(r3):\n    LI r4, 1\n    LI r5, 2\n    RET"
        )
        order, _ = schedule_block(fn.blocks[0].instrs, RS6000)
        assert order[-1].is_return

    def test_fills_load_delay_slot(self):
        fn = parse_function(
            """
func f(r3):
    L r4, 0(r3)
    AI r4, r4, 1
    LI r5, 7
    RET
"""
        )
        order, cycles = schedule_block(fn.blocks[0].instrs, RS6000)
        # The independent LI moves between the load and its use.
        ops = [i.opcode for i in order]
        assert ops.index("LI") < ops.index("AI")

    def test_separates_compare_and_branch(self):
        fn = parse_function(
            """
func f(r3):
entry:
    CI cr0, r3, 0
    LI r4, 1
    LI r5, 2
    LI r6, 3
    LI r7, 4
    BT out, cr0.eq
out:
    RET
"""
        )
        order, cycles = schedule_block(fn.blocks[0].instrs, RS6000)
        # Compare first, branch last: the LIs cover the cr latency.
        assert order[0].opcode == "CI"
        assert order[-1].opcode == "BT"
        assert cycles <= RS6000.cmp_to_branch + 1

    def test_dependences_never_violated(self):
        fn = parse_function(
            """
func f(r3):
    L r4, 0(r3)
    AI r5, r4, 1
    ST 0(r3), r5
    L r6, 0(r3)
    A r3, r6, r5
    RET
"""
        )
        order, _ = schedule_block(fn.blocks[0].instrs, RS6000)
        pos = {i.uid: k for k, i in enumerate(order)}
        instrs = fn.blocks[0].instrs
        # load -> AI -> ST -> load -> A chain must keep relative order.
        for a, b in zip(instrs, instrs[1:]):
            assert pos[a.uid] < pos[b.uid]

    def test_wider_machine_schedules_no_slower(self):
        fn = parse_function(
            """
func f(r3):
    LI r4, 1
    LI r5, 2
    LI r6, 3
    LI r7, 4
    RET
"""
        )
        _, narrow = schedule_block(fn.blocks[0].instrs, RS6000)
        _, wide = schedule_block(fn.blocks[0].instrs, POWER2)
        assert wide <= narrow

    def test_empty_block(self):
        assert schedule_block([], RS6000) == ([], 0)

    def test_length_only_mode_keeps_order(self):
        fn = parse_function(
            "func f(r3):\n    L r4, 0(r3)\n    AI r4, r4, 1\n    RET"
        )
        instrs = fn.blocks[0].instrs
        order, cycles = schedule_block(instrs, RS6000, reorder=False)
        assert [i.uid for i in order] == [i.uid for i in instrs]
        assert cycles >= RS6000.load_latency


class TestLocalSchedulingPass:
    SRC = """
data a: size=32 init=[1,2,3,4,5,6,7,8]

func f(r3):
    LA r9, a
    L r4, 0(r9)
    AI r4, r4, 1
    L r5, 4(r9)
    AI r5, r5, 2
    A r3, r4, r5
    RET
"""

    def test_semantics_preserved(self):
        before = parse_module(self.SRC)
        after = parse_module(self.SRC)
        LocalScheduling().run_on_module(after, PassContext(after))
        verify_module(after)
        assert_equivalent(before, after, "f", [[0]])

    def test_reports_change(self):
        module = parse_module(self.SRC)
        ctx = PassContext(module)
        changed = LocalScheduling().run_on_module(module, ctx)
        assert changed == (ctx.stats.get("local-sched.blocks-reordered", 0) > 0)
