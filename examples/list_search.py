#!/usr/bin/env python3
"""The paper's running example: the SPEC li ``xlygetvalue`` list search.

Reproduces the figure sequence from the paper:

1. the original loop executes at 11 cycles per iteration on the
   RS/6000 model (the paper's annotated cycle counts),
2. unrolling + renaming + global scheduling reaches ~7 cycles/iteration
   (the paper's "14 cycles for 2 iterations"),
3. enhanced pipeline scheduling (software pipelining across the back
   edge, with the pipeline prolog materialised as bookkeeping copies on
   the loop entry edge) improves further toward the paper's
   "10 cycles for 2 iterations".

Run:  python examples/list_search.py
"""

from repro.ir import format_function, parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.scheduling import VLIWScheduling
from repro.transforms import CopyPropagation, DeadCodeElimination, Straighten
from repro.transforms.pass_manager import PassContext, PassManager

LI_LOOP = """
data nodes: size=4096
data cells: size=4096

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""

N = 100


def build_list_module():
    """An N-node association list: node = [_, car -> cell, cdr]."""
    module = parse_module(LI_LOOP)
    layout = module.layout()
    nodes, cells = layout["nodes"], layout["cells"]
    node_init = [0] * (3 * N)
    cell_init = [0] * (2 * N)
    for i in range(N):
        node_init[3 * i + 1] = cells + 8 * i
        node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < N else 0
        cell_init[2 * i + 1] = 100 + i
    module.data["nodes"].init = node_init
    module.data["cells"].init = cell_init
    return module, nodes


def cycles_per_iteration(module, nodes):
    run = run_function(
        module, "xlygetvalue", [100 + N - 1, nodes], record_trace=True
    )
    return time_trace(run.trace, RS6000).cycles / N


def main() -> None:
    module, nodes = build_list_module()
    print(f"searching a {N}-node list for the last element\n")
    print(f"original loop:           {cycles_per_iteration(module, nodes):5.2f} "
          "cycles/iter   (paper: 11)")

    for pipelining, label, paper in (
        (False, "global scheduling:      ", "(paper: 14/2 = 7)"),
        (True, "+ software pipelining:  ", "(paper: 10/2 = 5)"),
    ):
        opt, nodes_opt = build_list_module()
        PassManager(
            [
                VLIWScheduling(unroll_factor=2, software_pipelining=pipelining),
                CopyPropagation(),
                DeadCodeElimination(),
                Straighten(),
            ]
        ).run(opt, PassContext(opt))
        verify_module(opt)
        print(f"{label} {cycles_per_iteration(opt, nodes_opt):5.2f} "
              f"cycles/iter   {paper}")
        if pipelining:
            print("\npipelined loop (note the next iteration's loads rotated")
            print("above the back-edge branch, and the prolog before `loop`):\n")
            print(format_function(opt.functions["xlygetvalue"]))


if __name__ == "__main__":
    main()
