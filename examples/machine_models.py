#!/usr/bin/env python3
"""Machine-model sensitivity: RS/6000 vs Power2-like vs PPC601-like.

The paper notes that "the same compiler is used to generate code for the
PowerPC 601 and Power2 processors, with similar performance gains". This
example compiles the workload suite once per level and times it on all
three machine presets, showing that the techniques' benefit carries
across POWER implementations (and grows with the second fixed-point unit
of the Power2-like model, which gives the scheduler more slots to fill).

Run:  python examples/machine_models.py
"""

from repro.evaluate import geomean_speedup, specint_table
from repro.machine.model import PRESETS


def main() -> None:
    print(f"{'model':<10} {'width':>6} {'fxus':>5} {'cmp->br':>8} {'geomean speedup':>16}")
    for name in ("rs6000", "power2", "ppc601"):
        model = PRESETS[name]
        rows = specint_table(model=model)
        gm = geomean_speedup(rows)
        print(
            f"{name:<10} {model.issue_width:>6} {model.fxu_units:>5} "
            f"{model.cmp_to_branch:>8} {gm:>16.3f}"
        )

    print()
    print("per-benchmark speedups:")
    tables = {name: specint_table(model=PRESETS[name]) for name in PRESETS}
    benches = [row.benchmark for row in tables["rs6000"]]
    print(f"{'bench':<10}" + "".join(f"{name:>10}" for name in sorted(PRESETS)))
    for i, bench in enumerate(benches):
        cells = "".join(
            f"{tables[name][i].speedup:>10.3f}" for name in sorted(PRESETS)
        )
        print(f"{bench:<10}{cells}")


if __name__ == "__main__":
    main()
