#!/usr/bin/env python3
"""Pathlength reduction on branchy code: unspeculation + basic block
expansion + prolog tailoring on the gcc-like dispatch kernel.

The dispatch loop's cases all end in ``B bottom`` right behind a chain
of conditional branches — the exact untaken-conditional-then-taken-
unconditional pattern the paper's basic block expansion removes. The
example shows the cycle/stall effect of each pathlength technique in
isolation and combined.

Run:  python examples/branchy_dispatch.py
"""

from repro.evaluate import measure, reference_value
from repro.machine import RS6000, run_function, time_trace
from repro.pipeline import compile_module
from repro.workloads import workload_by_name


def timing(module, workload):
    run = run_function(
        module, workload.entry, list(workload.args), record_trace=True,
        max_steps=10_000_000,
    )
    return time_trace(run.trace, RS6000)


def main() -> None:
    workload = workload_by_name("gcc")
    reference = reference_value(workload)
    print(f"workload: {workload.name} — {workload.description}\n")

    base = compile_module(workload.fresh_module(), "base")
    base_rep = timing(base.module, workload)
    print(f"{'configuration':<28} {'cycles':>8} {'uncond stalls':>14} {'speedup':>8}")
    print(f"{'baseline':<28} {base_rep.cycles:>8} "
          f"{base_rep.uncond_stall_cycles:>14} {1.0:>8.3f}")

    variants = [
        ("vliw, no expansion", ["bb-expansion"]),
        ("vliw, no unspeculation", ["unspeculation"]),
        ("vliw, no prolog tailoring", ["prolog-tailoring"]),
        ("vliw (all techniques)", []),
    ]
    for label, disabled in variants:
        compiled = compile_module(
            workload.fresh_module(), "vliw", disable=disabled or None
        )
        rep = timing(compiled.module, workload)
        value = run_function(
            compiled.module, workload.entry, list(workload.args),
            max_steps=10_000_000,
        ).value
        assert value == reference, f"miscompiled under {label}"
        print(f"{label:<28} {rep.cycles:>8} {rep.uncond_stall_cycles:>14} "
              f"{base_rep.cycles / rep.cycles:>8.3f}")

    print()
    print("Expansion removes the dispatch loop's unconditional-branch")
    print("stalls; the full pipeline combines it with scheduling for the")
    print("overall win — 'the synergy among them results in significant")
    print("gains', as the paper puts it.")


if __name__ == "__main__":
    main()
