#!/usr/bin/env python3
"""The paper's two-pass profiling directed feedback (PDF) workflow.

Pass 1: the compiler plans a *subset* of basic blocks to count (just
enough for every edge count to be uniquely recoverable), inserts real
counting instructions — one ``AI`` per counted block inside loops, with
the counter loads/stores migrated to preheaders/exits — and the program
runs on a short *training* input.

Pass 2: the counts are read back from the counts table, the full edge
profile is recovered by constraint propagation, and the compiler reuses
it for scheduling heuristics, basic-block re-ordering, branch reversal,
and unroll decisions. The recompiled program then runs on the reference
input.

Run:  python examples/profile_guided.py
"""

from repro.evaluate import measure, reference_value
from repro.machine import RS6000
from repro.pdf import collect_profile, plan_instrumentation
from repro.pdf.instrument import instrumentation_overhead
from repro.workloads import workload_by_name


def main() -> None:
    # compress is the paper's poster child for feedback: its hash-probe
    # loop rarely iterates, so static unrolling hurts — the profile
    # reveals that.
    workload = workload_by_name("compress")
    reference = reference_value(workload)
    print(f"workload: {workload.name} — {workload.description}")
    print(f"training input {workload.train_args}, reference input {workload.args}\n")

    # --- pass 1: plan, instrument, train ---------------------------------
    module = workload.fresh_module()
    plan = plan_instrumentation(module)
    counted = sum(len(v) for v in plan.counted.values())
    total = sum(len(fn.blocks) for fn in module.functions.values())
    print(f"instrumentation plan: counting {counted} of {total} basic blocks")

    profile, plan = collect_profile(
        module, workload.entry, [workload.train_args], plan=plan
    )
    hot = sorted(profile.edge_counts.items(), key=lambda kv: -kv[1])[:5]
    print("hottest edges from the training run:")
    for (fn, src, dst), count in hot:
        print(f"    {fn}: {src} -> {dst}  x{count}")
    print()

    # --- pass 2: recompile with feedback ---------------------------------
    base = measure(workload, "base", RS6000, check_against=reference)
    vliw = measure(workload, "vliw", RS6000, check_against=reference)
    pdf = measure(
        workload, "vliw", RS6000, profile=profile, plan=plan, check_against=reference
    )

    print(f"{'level':<14} {'cycles':>8} {'speedup':>8}")
    print(f"{'baseline':<14} {base.cycles:>8} {1.0:>8.3f}")
    print(f"{'vliw':<14} {vliw.cycles:>8} {base.cycles / vliw.cycles:>8.3f}")
    print(f"{'vliw + pdf':<14} {pdf.cycles:>8} {base.cycles / pdf.cycles:>8.3f}")
    print()
    print("PDF turns the static regression on this branchy, low-trip-count")
    print("workload into a win, exactly the paper's argument for feedback.")


if __name__ == "__main__":
    main()
