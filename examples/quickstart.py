#!/usr/bin/env python3
"""Quickstart: compile a small function at both optimisation levels.

Writes a function in the textual POWER-flavoured IR, compiles it with
the baseline ("xlc -O equivalent") and the VLIW pipeline, runs both on
the RS/6000-like machine model, and prints the cycle counts — the
smallest end-to-end tour of the library.

Run:  python examples/quickstart.py
"""

from repro.ir import format_function, parse_module
from repro.machine import RS6000, run_function, time_trace
from repro.pipeline import compile_module

# A saturating dot product with a conditionally updated global maximum —
# enough control flow for the paper's techniques to bite.
SOURCE = """
data xs: size=256
data ys: size=256
data peak: size=4 init=[0]

func dot_clamped(r3):
    # r3 = element count; returns the clamped dot product.
    MTCTR r3
    LA r4, xs
    LA r5, ys
    LA r9, peak
    LI r6, 0
    AI r4, r4, -4
    AI r5, r5, -4
loop:
    LU r7, 4(r4)
    LU r8, 4(r5)
    MUL r7, r7, r8
    A r6, r6, r7
    CI cr0, r6, 10000
    BT clamp, cr0.le
    LI r6, 10000
clamp:
    L r10, 0(r9)
    C cr1, r6, r10
    BT next, cr1.le
    ST 0(r9), r6
next:
    BCT loop
done:
    LR r3, r6
    RET
"""


def main() -> None:
    n = 48
    module = parse_module(SOURCE)
    module.data["xs"].init = [(7 * i) % 23 for i in range(n)]
    module.data["ys"].init = [(5 * i + 3) % 19 for i in range(n)]

    results = {}
    for level in ("base", "vliw"):
        compiled = compile_module(module, level)
        run = run_function(
            compiled.module, "dot_clamped", [n], record_trace=True
        )
        report = time_trace(run.trace, RS6000)
        results[level] = (run.value, report)
        print(f"--- {level} ---")
        print(f"result        : {run.value}")
        print(f"cycles        : {report.cycles}")
        print(f"instructions  : {report.instructions} (IPC {report.ipc:.2f})")
        print(f"static size   : {compiled.static_instructions} instructions")
        print(f"compile time  : {compiled.compile_seconds * 1e3:.1f} ms")
        print()

    base_val, base_rep = results["base"]
    vliw_val, vliw_rep = results["vliw"]
    assert base_val == vliw_val, "miscompilation!"
    print(f"speedup: {base_rep.cycles / vliw_rep.cycles:.3f}x")

    print()
    print("VLIW-compiled code:")
    compiled = compile_module(module, "vliw")
    print(format_function(compiled.module.functions["dot_clamped"]))


if __name__ == "__main__":
    main()
