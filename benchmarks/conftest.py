import os
import sys

# Make the shared experiment helpers importable.
sys.path.insert(0, os.path.dirname(__file__))
