"""E1 — the paper's SPECint92 table (xlc vs VLIW, time and SPECmark).

Paper (RS/6000 model 580/980 hardware):

    Benchmark   xlc time  xlc mark  VLIW time  VLIW mark
    espresso      41.70     54.44     38.30      59.27
    li            99.00     62.66     81.90      75.82
    eqntott       13.60     80.88     10.70     102.80
    compress      53.90     51.39     48.10      57.59
    sc            69.20     65.46     62.40      72.60
    gcc           91.40     59.61     90.20      60.53
    SPECint92               61.73                69.93    (~13 %)

We reproduce the shape on the six synthetic kernels: the VLIW pipeline
wins on (almost) all benchmarks, the geometric-mean improvement lands in
the paper's band, and li is the biggest winner.
"""

from repro.evaluate import format_spec_table, geomean_speedup, specint_table
from repro.machine.model import RS6000


def test_e1_specint_table(benchmark):
    rows = benchmark.pedantic(
        lambda: specint_table(model=RS6000), iterations=1, rounds=1
    )
    print()
    print(format_spec_table(rows))

    gm = geomean_speedup(rows)
    benchmark.extra_info["geomean_speedup"] = round(gm, 4)
    for row in rows:
        benchmark.extra_info[f"{row.benchmark}_speedup"] = round(row.speedup, 4)

    # Shape assertions (paper: every benchmark improves, ~13% geomean).
    assert 1.05 <= gm <= 1.35
    improved = [r.benchmark for r in rows if r.speedup > 1.0]
    assert len(improved) >= len(rows) - 1
    by_name = {r.benchmark: r for r in rows}
    assert by_name["li"].speedup == max(r.speedup for r in rows)
