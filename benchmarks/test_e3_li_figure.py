"""E3 — the paper's xlygetvalue figure sequence (SPEC li inner loop).

Paper: the original loop "executes at 11 cycles per iteration"; global
scheduling within the (unrolled) loop body yields "14 cycles for 2
iterations" (7/iter); adding software pipelining yields "10 cycles for 2
iterations" (5/iter).

Measured here on the verbatim loop against the RS/6000 model:
baseline must hit the calibrated 11 cycles/iteration exactly; global
scheduling must land near 7; pipelining must improve further (we reach
~6.1 rather than the paper's 5 — the greedy rotation scheduler stops one
overlap short of the hand schedule; see EXPERIMENTS.md).
"""

from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.scheduling import VLIWScheduling
from repro.transforms import CopyPropagation, DeadCodeElimination, Straighten
from repro.transforms.pass_manager import PassContext, PassManager

LI_LOOP = """
data nodes: size=4096
data cells: size=4096

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""

N = 100


def build():
    m = parse_module(LI_LOOP)
    lay = m.layout()
    nodes, cells = lay["nodes"], lay["cells"]
    node_init = [0] * (3 * N)
    cell_init = [0] * (2 * N)
    for i in range(N):
        node_init[3 * i + 1] = cells + 8 * i
        node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < N else 0
        cell_init[2 * i + 1] = 100 + i
    m.data["nodes"].init = node_init
    m.data["cells"].init = cell_init
    return m, nodes


def cycles_per_iter(module, nodes):
    r = run_function(module, "xlygetvalue", [100 + N - 1, nodes], record_trace=True)
    return time_trace(r.trace, RS6000).cycles / N


def compile_variant(software_pipelining):
    m, nodes = build()
    PassManager(
        [
            VLIWScheduling(unroll_factor=2, software_pipelining=software_pipelining),
            CopyPropagation(),
            DeadCodeElimination(),
            Straighten(),
        ]
    ).run(m, PassContext(m))
    verify_module(m)
    return m, nodes


def test_e3_li_figure(benchmark):
    m0, nodes = build()
    baseline = cycles_per_iter(m0, nodes)

    def run_experiment():
        mg, n1 = compile_variant(False)
        mp, n2 = compile_variant(True)
        return cycles_per_iter(mg, n1), cycles_per_iter(mp, n2)

    global_cyc, pipe_cyc = benchmark.pedantic(run_experiment, iterations=1, rounds=1)

    print()
    print(f"original loop:        {baseline:.2f} cycles/iter (paper: 11)")
    print(f"global scheduling:    {global_cyc:.2f} cycles/iter (paper: 14/2 = 7)")
    print(f"+ software pipelining:{pipe_cyc:.2f} cycles/iter (paper: 10/2 = 5)")

    benchmark.extra_info["baseline_cyc_per_iter"] = round(baseline, 2)
    benchmark.extra_info["global_sched_cyc_per_iter"] = round(global_cyc, 2)
    benchmark.extra_info["pipelined_cyc_per_iter"] = round(pipe_cyc, 2)

    # Calibration: the original loop matches the paper exactly.
    assert abs(baseline - 11.0) < 0.3
    # Global scheduling reaches the paper's intermediate schedule.
    assert abs(global_cyc - 7.0) < 0.5
    # Pipelining improves strictly further, toward the paper's 5.
    assert pipe_cyc < global_cyc
    assert pipe_cyc < 6.8
