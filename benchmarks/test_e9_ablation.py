"""E9 — per-pass ablation.

The paper stresses that "each component by itself contributes a small
portion of the overall performance improvement. But, the synergy among
them results in significant gains". We disable each original technique
in turn and report the geomean speedup of the remaining pipeline, plus
machine-model sensitivity (RS/6000 vs Power2-like vs PPC601-like — the
paper reports the techniques carry across POWER implementations).
"""

from repro.evaluate import geomean_speedup, specint_table
from repro.machine.model import POWER2, PPC601, RS6000

ABLATABLE = [
    "loop-memory-motion",
    "unspeculation",
    "vliw-scheduling",
    "limited-combining",
    "bb-expansion",
    "prolog-tailoring",
]


def run_ablation():
    results = {}
    results["full"] = geomean_speedup(specint_table())
    for name in ABLATABLE:
        results[f"-{name}"] = geomean_speedup(specint_table(disable=[name]))
    results["power2"] = geomean_speedup(specint_table(model=POWER2))
    results["ppc601"] = geomean_speedup(specint_table(model=PPC601))
    return results


def test_e9_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    print()
    for key, val in results.items():
        print(f"{key:<24} geomean speedup {val:.3f}")
        benchmark.extra_info[key] = round(val, 4)

    full = results["full"]
    # Shape: the full pipeline is at (or essentially at) the top; no
    # single ablation collapses the gain to nothing, and removing the
    # scheduler costs the most.
    assert full >= 1.05
    scheduler_loss = full - results["-vliw-scheduling"]
    other_losses = [
        full - results[f"-{name}"] for name in ABLATABLE if name != "vliw-scheduling"
    ]
    assert scheduler_loss >= max(other_losses) - 0.02
    # Gains carry to the other machine models (paper: "similar
    # performance gains" on Power2 and PowerPC 601).
    assert results["power2"] > 1.0
    assert results["ppc601"] > 1.0
