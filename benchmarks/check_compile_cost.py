#!/usr/bin/env python3
"""Gate on guarded compile cost: fail if it regressed >25% vs reference.

The E2 guarded benchmark (``benchmarks/test_e2_compile_cost.py``) writes
``BENCH_compile.json`` with, among other figures, the ratio of the
fast-guarded suite compile time to the plain suite compile time.  That
ratio cancels out machine speed (both sides run on the same interpreter
on the same box), so it can be compared against a checked-in reference
(``benchmarks/compile_cost_reference.json``) across CI runners.

Usage::

    python benchmarks/check_compile_cost.py [BENCH_compile.json [reference.json]]

Exits non-zero when the current ratio exceeds the reference by more than
the tolerance — i.e. when guarded compiles got relatively slower.
"""

import json
import sys
from pathlib import Path

TOLERANCE = 0.25  # fail when >25% worse than the reference ratio


def main(argv):
    bench_path = Path(argv[1]) if len(argv) > 1 else Path("BENCH_compile.json")
    ref_path = (
        Path(argv[2])
        if len(argv) > 2
        else Path(__file__).parent / "compile_cost_reference.json"
    )
    if not bench_path.exists():
        print(f"error: {bench_path} not found — run the E2 benchmark first:")
        print("  PYTHONPATH=src python -m pytest -q benchmarks/test_e2_compile_cost.py")
        return 2

    bench = json.loads(bench_path.read_text())
    reference = json.loads(ref_path.read_text())

    current = bench["guarded_fast_over_plain"]
    baseline = reference["guarded_fast_over_plain"]
    limit = baseline * (1.0 + TOLERANCE)

    print(f"guarded/plain compile-time ratio: {current:.3f} "
          f"(reference {baseline:.3f}, limit {limit:.3f})")
    print(f"single-shot speedup vs legacy:    "
          f"{bench.get('single_shot_speedup', float('nan')):.3f}")
    print(f"repetition speedup vs legacy:     "
          f"{bench.get('repeated_speedup', float('nan')):.3f}")

    if current > limit:
        print(f"FAIL: guarded compile cost regressed "
              f"{100.0 * (current / baseline - 1.0):.1f}% over the reference "
              f"(tolerance {100.0 * TOLERANCE:.0f}%)")
        return 1
    print("OK: guarded compile cost within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
