"""E5 — low-overhead profiling (the paper's eqntott figure).

Paper: only a subset of basic blocks carries counting code (BB1, BB2,
BB4 inside the loop; BB7, BB8 outside in the figure); outside loops a
counter costs three instructions (load, add, store), while inside loops
the loads/stores migrate to the preheader/exits "and thus the counting
code overhead is one instruction per basic block inside the loop".

We measure, on the eqntott kernel:
- counted blocks vs total blocks (subset property),
- dynamic instruction overhead of the optimised instrumentation vs a
  naive variant that counts every block with the full 3-instruction
  sequence in place.
"""

from repro.ir.instructions import make_alui, make_la, make_load, make_store
from repro.machine.interpreter import run_function
from repro.pdf.instrument import COUNTS_SYMBOL, apply_instrumentation, plan_instrumentation
from repro.transforms.linkage import LinkageLowering
from repro.transforms.pass_manager import PassContext
from repro.workloads import workload_by_name


def naive_instrumentation(module):
    """Count EVERY block with the in-place 3-instruction sequence."""
    labels = [
        (fn.name, bb.label)
        for fn in module.functions.values()
        for bb in fn.blocks
    ]
    module.add_data(COUNTS_SYMBOL, max(4 * len(labels), 4))
    slot = 0
    for name in sorted(module.functions):
        fn = module.functions[name]
        base = fn.new_vreg("gpr", include_callee_saved=True)
        la = make_la(base, COUNTS_SYMBOL)
        la.attrs["counter"] = True
        fn.entry.instrs.insert(0, la)
        for bb in fn.blocks:
            tmp = fn.new_vreg("gpr", include_callee_saved=True)
            code = [
                make_load(tmp, 4 * slot, base),
                make_alui("AI", tmp, tmp, 1),
                make_store(4 * slot, base, tmp),
            ]
            for i in code:
                i.attrs["counter"] = True
            at = len(bb.instrs) - (1 if bb.terminator else 0)
            bb.instrs[at:at] = code
            slot += 1
    return module


def dynamic_overhead(module, entry, args):
    r = run_function(module, entry, list(args), record_trace=True, max_steps=10_000_000)
    counter_instrs = sum(1 for i, _ in r.trace if i.attrs.get("counter"))
    return counter_instrs, r.steps


def run_experiment():
    wl = workload_by_name("eqntott")

    plain = wl.fresh_module()
    base_steps = run_function(
        plain, wl.entry, list(wl.args), max_steps=10_000_000
    ).steps

    optimised = wl.fresh_module()
    plan = plan_instrumentation(optimised)
    apply_instrumentation(optimised, plan)
    LinkageLowering().run_on_module(optimised, PassContext(optimised))
    opt_counters, opt_steps = dynamic_overhead(optimised, wl.entry, wl.args)

    naive = naive_instrumentation(wl.fresh_module())
    LinkageLowering().run_on_module(naive, PassContext(naive))
    naive_counters, naive_steps = dynamic_overhead(naive, wl.entry, wl.args)

    total_blocks = sum(
        len(fn.blocks) for fn in wl.fresh_module().functions.values()
    )
    counted_blocks = sum(len(v) for v in plan.counted.values())
    return {
        "base_steps": base_steps,
        "opt_counters": opt_counters,
        "naive_counters": naive_counters,
        "counted_blocks": counted_blocks,
        "total_blocks": total_blocks,
    }


def test_e5_profiling_overhead(benchmark):
    stats = benchmark.pedantic(run_experiment, iterations=1, rounds=1)

    opt_pct = 100 * stats["opt_counters"] / stats["base_steps"]
    naive_pct = 100 * stats["naive_counters"] / stats["base_steps"]
    print()
    print(f"counted blocks: {stats['counted_blocks']} of {stats['total_blocks']}")
    print(f"dynamic counting overhead: optimised {opt_pct:.1f}% vs naive {naive_pct:.1f}%")

    benchmark.extra_info.update(
        counted_blocks=stats["counted_blocks"],
        total_blocks=stats["total_blocks"],
        optimised_overhead_pct=round(opt_pct, 2),
        naive_overhead_pct=round(naive_pct, 2),
    )

    # Shape: a strict subset of blocks is counted, and the optimised
    # dynamic overhead is well below half of the naive scheme's.
    assert stats["counted_blocks"] < stats["total_blocks"]
    assert stats["opt_counters"] < 0.5 * stats["naive_counters"]
