"""E7 — speculative load/store motion out of loops (the paper's a(r4,12)
example).

Paper: after motion "the new loop has fewer instructions, resulting in
higher performance" — the conditionally executed load/increment/store of
the global becomes an in-register add, with the load hoisted to the
preheader and the store pushed to the loop exits.

We measure the verbatim example: loop-body memory accesses to the moved
location must disappear, dynamic pathlength must drop, cycles must drop.
"""

from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.transforms import (
    CopyPropagation,
    DeadCodeElimination,
    LoopMemoryMotion,
    Straighten,
)
from repro.transforms.pass_manager import PassContext, PassManager

SRC = """
data a: size=16 init=[0, 0, 0, 5]
data b: size=256

func f(r3):
    LA r4, a
    LA r6, b
    LI r5, 0
loop:
    L r7, 0(r6)
    CI cr0, r7, 0
    BT skip, cr0.eq
    L r3, 12(r4)
    AI r3, r3, 1
    ST 12(r4), r3
skip:
    AI r6, r6, 4
    AI r5, r5, 1
    CI cr1, r5, 60
    BF loop, cr1.eq
done:
    L r3, 12(r4)
    RET
"""


def build():
    m = parse_module(SRC)
    m.data["b"].init = [1 if i % 3 else 0 for i in range(60)]
    return m


def run_experiment():
    before = build()
    after = build()
    PassManager(
        [LoopMemoryMotion(), CopyPropagation(), DeadCodeElimination(), Straighten()]
    ).run(after, PassContext(after))
    verify_module(after)

    rb = run_function(before, "f", [0], record_trace=True)
    ra = run_function(after, "f", [0], record_trace=True)
    assert ra.value == rb.value
    assert ra.state.snapshot_mem() == rb.state.snapshot_mem()
    return (
        rb.steps,
        ra.steps,
        time_trace(rb.trace, RS6000).cycles,
        time_trace(ra.trace, RS6000).cycles,
    )


def test_e7_loop_motion(benchmark):
    steps_b, steps_a, cyc_b, cyc_a = benchmark.pedantic(
        run_experiment, iterations=1, rounds=1
    )

    print()
    print(f"dynamic instructions: {steps_b} -> {steps_a}")
    print(f"cycles:               {cyc_b} -> {cyc_a}")

    benchmark.extra_info.update(
        steps_before=steps_b,
        steps_after=steps_a,
        cycles_before=cyc_b,
        cycles_after=cyc_a,
    )

    assert steps_a < steps_b  # pathlength reduced
    assert cyc_a < cyc_b  # and it shows on the machine
