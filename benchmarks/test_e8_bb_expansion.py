"""E8 — basic block expansion stall removal (the paper's BF/op/B example).

Paper: "the RS/6000 can be significantly slowed down if an untaken
conditional branch is followed immediately by a (taken) unconditional
branch"; expansion copies 4-5 non-branch instructions from the target so
the unconditional branch either disappears from the trace or sits far
enough from the conditional branch.

Measured on the gcc-like dispatch kernel (whose cases all end in
``B bottom``) plus the paper's minimal example.
"""

from repro.evaluate import measure, reference_value
from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.transforms import BasicBlockExpansion, Straighten
from repro.transforms.pass_manager import PassContext, PassManager
from repro.workloads import workload_by_name

MINIMAL = """
func f(r3, r4):
    CI cr0, r3, 0
    BF L1, cr0.eq
    AI r4, r4, 1
    B L2
L1:
    AI r4, r4, 100
L2:
    CI cr1, r4, 0
    BF L3, cr1.eq
    AI r4, r4, 2
    AI r4, r4, 3
    AI r4, r4, 4
    AI r4, r4, 5
    AI r4, r4, 6
L3:
    LR r3, r4
    RET
"""


def run_experiment():
    before = parse_module(MINIMAL)
    after = parse_module(MINIMAL)
    PassManager([BasicBlockExpansion(), Straighten()]).run(after, PassContext(after))
    verify_module(after)
    rb = run_function(before, "f", [0, 0], record_trace=True)
    ra = run_function(after, "f", [0, 0], record_trace=True)
    assert ra.value == rb.value
    tb, ta = time_trace(rb.trace, RS6000), time_trace(ra.trace, RS6000)

    # Suite-level: gcc with vs without expansion.
    wl = workload_by_name("gcc")
    ref = reference_value(wl)
    with_exp = measure(wl, "vliw", check_against=ref)
    without_exp = measure(wl, "vliw", check_against=ref, disable=["bb-expansion"])
    return tb, ta, with_exp.cycles, without_exp.cycles


def test_e8_bb_expansion(benchmark):
    tb, ta, gcc_with, gcc_without = benchmark.pedantic(
        run_experiment, iterations=1, rounds=1
    )

    print()
    print(f"minimal example: {tb.cycles} -> {ta.cycles} cycles "
          f"(uncond stalls {tb.uncond_stall_cycles} -> {ta.uncond_stall_cycles})")
    print(f"gcc kernel: {gcc_without} cycles without expansion, "
          f"{gcc_with} with ({gcc_without / gcc_with:.3f}x)")

    benchmark.extra_info.update(
        minimal_cycles_before=tb.cycles,
        minimal_cycles_after=ta.cycles,
        gcc_with_expansion=gcc_with,
        gcc_without_expansion=gcc_without,
    )

    assert ta.uncond_stall_cycles < tb.uncond_stall_cycles
    assert ta.cycles < tb.cycles
    assert gcc_with < gcc_without  # expansion pays off on branchy code
