"""E10 — comparison with prior inter-block schedulers.

The paper argues that earlier superscalar schedulers (Bernstein & Rodeh's
one-branch speculation; region approaches without software pipelining)
leave performance on the table compared to the VLIW-derived framework:
"these authors do not appear to have done a thorough literature search
on previously published VLIW scheduling techniques".

We quantify the claim on the li list-search loop, comparing four
scheduling regimes (all on otherwise identical pipelines):

1. local list scheduling only,
2. Bernstein-Rodeh-style (speculate above at most one conditional
   branch, no join duplication, no motion across iterations),
3. full global scheduling (arbitrary paths + bookkeeping copies),
4. full global scheduling + enhanced pipeline scheduling.
"""

import math

from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.scheduling import GlobalScheduling, LocalScheduling, VLIWScheduling
from repro.scheduling.related_work import BernsteinRodehScheduling
from repro.transforms import CopyPropagation, DeadCodeElimination, Straighten
from repro.transforms.pass_manager import PassContext, PassManager

LI_LOOP = """
data nodes: size=4096
data cells: size=4096

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""

N = 100


def build():
    m = parse_module(LI_LOOP)
    lay = m.layout()
    nodes, cells = lay["nodes"], lay["cells"]
    node_init = [0] * (3 * N)
    cell_init = [0] * (2 * N)
    for i in range(N):
        node_init[3 * i + 1] = cells + 8 * i
        node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < N else 0
        cell_init[2 * i + 1] = 100 + i
    m.data["nodes"].init = node_init
    m.data["cells"].init = cell_init
    return m, nodes


REGIMES = {
    "local": lambda: [LocalScheduling()],
    "bernstein-rodeh": lambda: [BernsteinRodehScheduling()],
    "global": lambda: [VLIWScheduling(software_pipelining=False)],
    "global+pipelining": lambda: [VLIWScheduling(software_pipelining=True)],
}


def run_comparison():
    reference, nodes = build()
    ref = run_function(reference, "xlygetvalue", [100 + N - 1, nodes]).value
    results = {}
    for name, factory in REGIMES.items():
        module, nodes = build()
        PassManager(
            factory() + [CopyPropagation(), DeadCodeElimination(), Straighten()]
        ).run(module, PassContext(module))
        verify_module(module)
        run = run_function(
            module, "xlygetvalue", [100 + N - 1, nodes], record_trace=True
        )
        assert run.value == ref
        results[name] = time_trace(run.trace, RS6000).cycles / N
    return results


def test_e10_scheduler_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, iterations=1, rounds=1)

    print()
    print(f"{'regime':<20} {'cycles/iter':>12}")
    for name, cyc in results.items():
        print(f"{name:<20} {cyc:>12.2f}")
        benchmark.extra_info[name] = round(cyc, 2)

    # Shape: single-branch speculation already fills this loop's
    # intra-iteration compare-to-branch gaps (it clearly beats
    # local-only), and plain global scheduling matches it here — the
    # decisive advantage of the paper's framework on a tight loop is the
    # motion Bernstein-Rodeh structurally cannot do at all:
    # cross-iteration software pipelining.
    assert results["bernstein-rodeh"] < results["local"] - 2.0
    assert abs(results["global"] - results["bernstein-rodeh"]) < 0.5
    assert results["global+pipelining"] < results["bernstein-rodeh"] - 0.5
