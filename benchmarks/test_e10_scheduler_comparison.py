"""E10 — comparison with prior inter-block schedulers, and the
software-pipelining backends.

The paper argues that earlier superscalar schedulers (Bernstein & Rodeh's
one-branch speculation; region approaches without software pipelining)
leave performance on the table compared to the VLIW-derived framework:
"these authors do not appear to have done a thorough literature search
on previously published VLIW scheduling techniques".

We quantify the claim on the li list-search loop, comparing four
scheduling regimes (all on otherwise identical pipelines):

1. local list scheduling only,
2. Bernstein-Rodeh-style (speculate above at most one conditional
   branch, no join duplication, no motion across iterations),
3. full global scheduling (arbitrary paths + bookkeeping copies),
4. full global scheduling + enhanced pipeline scheduling.

The second half benchmarks the software-pipelining *backends* on the
loop-dominated workloads (li ``xlygetvalue``, compress's hash probe,
eqntott's ``cmppt``): legacy greedy rotations (``swp``) against true
modulo scheduling (``modulo``) and the bounded exhaustive slot search
(``modulo-opt``), plus each kernel's heuristic-vs-optimal II gap. The
figures land in ``BENCH_modulo.json`` for CI to archive; the acceptance
contract — modulo never slower per iteration than swp, strictly faster
on at least two of the three — is asserted here.
"""

import json
import math
import random
from pathlib import Path

from repro.analysis.alias import MemoryModel
from repro.analysis.loops import find_natural_loops
from repro.ir import parse_module, verify_module
from repro.machine import RS6000, run_function, time_trace
from repro.scheduling import GlobalScheduling, LocalScheduling, VLIWScheduling
from repro.scheduling.modulo import (
    kernel_dependences,
    modulo_schedule,
    optimal_modulo_schedule,
    rec_mii,
    res_mii,
)
from repro.scheduling.related_work import BernsteinRodehScheduling
from repro.transforms import CopyPropagation, DeadCodeElimination, Straighten
from repro.transforms.pass_manager import PassContext, PassManager

BENCH_JSON = Path("BENCH_modulo.json")

LI_LOOP = """
data nodes: size=4096
data cells: size=4096

func xlygetvalue(r3, r8):
loop:
    L r4, 4(r8)
    L r5, 4(r4)
    C cr0, r5, r3
    BT found, cr0.eq
    L r8, 8(r8)
    CI cr1, r8, 0
    BF loop, cr1.eq
endofchain:
    LI r3, 0
    RET
found:
    LR r3, r4
    RET
"""

N = 100


def build():
    m = parse_module(LI_LOOP)
    lay = m.layout()
    nodes, cells = lay["nodes"], lay["cells"]
    node_init = [0] * (3 * N)
    cell_init = [0] * (2 * N)
    for i in range(N):
        node_init[3 * i + 1] = cells + 8 * i
        node_init[3 * i + 2] = nodes + 12 * (i + 1) if i + 1 < N else 0
        cell_init[2 * i + 1] = 100 + i
    m.data["nodes"].init = node_init
    m.data["cells"].init = cell_init
    return m, nodes


REGIMES = {
    "local": lambda: [LocalScheduling()],
    "bernstein-rodeh": lambda: [BernsteinRodehScheduling()],
    "global": lambda: [VLIWScheduling(software_pipelining=False)],
    "global+pipelining": lambda: [VLIWScheduling(software_pipelining=True)],
}


def run_comparison():
    reference, nodes = build()
    ref = run_function(reference, "xlygetvalue", [100 + N - 1, nodes]).value
    results = {}
    for name, factory in REGIMES.items():
        module, nodes = build()
        PassManager(
            factory() + [CopyPropagation(), DeadCodeElimination(), Straighten()]
        ).run(module, PassContext(module))
        verify_module(module)
        run = run_function(
            module, "xlygetvalue", [100 + N - 1, nodes], record_trace=True
        )
        assert run.value == ref
        results[name] = time_trace(run.trace, RS6000).cycles / N
    return results


def test_e10_scheduler_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, iterations=1, rounds=1)

    print()
    print(f"{'regime':<20} {'cycles/iter':>12}")
    for name, cyc in results.items():
        print(f"{name:<20} {cyc:>12.2f}")
        benchmark.extra_info[name] = round(cyc, 2)

    # Shape: single-branch speculation already fills this loop's
    # intra-iteration compare-to-branch gaps (it clearly beats
    # local-only), and plain global scheduling matches it here — the
    # decisive advantage of the paper's framework on a tight loop is the
    # motion Bernstein-Rodeh structurally cannot do at all:
    # cross-iteration software pipelining.
    assert results["bernstein-rodeh"] < results["local"] - 2.0
    assert abs(results["global"] - results["bernstein-rodeh"]) < 0.5
    assert results["global+pipelining"] < results["bernstein-rodeh"] - 0.5


# ---------------------------------------------------------------------------
# Software-pipelining backends on the loop-dominated workloads
# ---------------------------------------------------------------------------

COMPRESS_LOOP = """
data table: size=1024

func lookup_insert(r3, r4):
    MULI r5, r3, 2654435761
    SRI r5, r5, 8
    ANDI r5, r5, 255
probe:
    SLI r6, r5, 2
    A r6, r6, r4
    L r7, 0(r6)
    CI cr0, r7, 0
    BT empty, cr0.eq
    C cr1, r7, r3
    BT hit, cr1.eq
    AI r5, r5, 1
    ANDI r5, r5, 255
    B probe
empty:
    ST 0(r6), r3
    LI r3, 0
    RET
hit:
    LI r3, 1
    RET
"""

EQNTOTT_LOOP = """
data terma: size=512
data termb: size=512

func cmppt(r3, r4, r5):
    MTCTR r5
    LI r8, 1
loop:
    LU r6, 4(r3)
    LU r7, 4(r4)
    CI cr0, r6, 2
    BF skipa, cr0.eq
    LI r6, 0
skipa:
    CI cr1, r7, 2
    BF skipb, cr1.eq
    LI r7, 0
skipb:
    C cr2, r6, r7
    BT diff, cr2.eq
    LI r3, 2
    RET
diff:
    BCT loop
    LI r3, 0
    RET
"""


def build_li():
    m, nodes = build()
    return m, "xlygetvalue", [100 + N - 1, nodes]


def build_compress():
    """A hash-probe chain of N collisions ending on an empty slot."""
    m = parse_module(COMPRESS_LOOP)
    key = 777
    home = (((key * 2654435761) & 0xFFFFFFFF) >> 8) & 255
    init = [0] * 256
    for i in range(N):
        init[(home + i) & 255] = 1000 + i
    m.data["table"].init = init
    table = m.layout()["table"]
    return m, "lookup_insert", [key, table]


def build_eqntott():
    """Two N-entry terms equal modulo the don't-care encoding (0 ~ 2)."""
    m = parse_module(EQNTOTT_LOOP)
    rng = random.Random(11)
    a = [rng.choice((0, 1, 2)) for _ in range(N)]
    b = [(2 if x == 0 else x) if rng.random() < 0.5 else x for x in a]
    m.data["terma"].init = a + [0] * (128 - N)
    m.data["termb"].init = b + [0] * (128 - N)
    lay = m.layout()
    return m, "cmppt", [lay["terma"] - 4, lay["termb"] - 4, N]


PIPELINER_WORKLOADS = {
    # workload -> (builder, unroll factor of the loop-dominated config)
    "li": (build_li, 2),
    "compress": (build_compress, 4),
    "eqntott": (build_eqntott, 2),
}


def _ii_gap(module):
    """Heuristic vs optimal II of each source-loop kernel in ``module``.

    Measured on the pre-unroll kernels (the optimal backend's bounded
    search is exact there); kernels past its node bound report the
    heuristic II with ``optimal`` null — an honest "unknown", not a gap.
    """
    gaps = []
    for fn in module.functions.values():
        loops = find_natural_loops(fn)
        parents = {id(lp.parent) for lp in loops if lp.parent is not None}
        memory = MemoryModel(fn, module)
        for lp in loops:
            if id(lp) in parents:
                continue
            seq = [x for bb in lp.blocks(fn) for x in bb.instrs]
            if len(seq) < 2:
                continue
            edges = kernel_dependences(seq, memory, RS6000)
            mii = max(res_mii(seq, RS6000), rec_mii(len(seq), edges))
            heur = modulo_schedule(seq, edges, RS6000, mii=mii)
            if heur is None:
                continue
            opt = optimal_modulo_schedule(
                seq, edges, RS6000, mii=mii, ii_limit=heur.ii
            )
            gaps.append(
                {
                    "loop": f"{fn.name}:{lp.header}",
                    "mii": mii,
                    "heuristic_ii": heur.ii,
                    "optimal_ii": opt.ii if opt is not None else None,
                    "gap": heur.ii - opt.ii if opt is not None else None,
                }
            )
    return gaps


def run_pipeliner_comparison():
    results = {}
    for name, (builder, unroll) in PIPELINER_WORKLOADS.items():
        ref_module, entry, args = builder()
        ref = run_function(ref_module, entry, args).value
        row = {"unroll": unroll, "ii_gaps": _ii_gap(builder()[0])}
        for pipeliner in ("swp", "modulo", "modulo-opt"):
            module, entry, args = builder()
            PassManager(
                [
                    VLIWScheduling(unroll_factor=unroll, pipeliner=pipeliner),
                    CopyPropagation(),
                    DeadCodeElimination(),
                    Straighten(),
                ]
            ).run(module, PassContext(module))
            verify_module(module)
            run = run_function(module, entry, args, record_trace=True)
            assert run.value == ref, (name, pipeliner, run.value, ref)
            row[pipeliner] = time_trace(run.trace, RS6000).cycles / N
        results[name] = row
    return results


def test_e10_pipeliner_backends(benchmark):
    results = benchmark.pedantic(
        run_pipeliner_comparison, iterations=1, rounds=1
    )

    print()
    print(
        f"{'workload':<10} {'swp':>8} {'modulo':>8} {'mod-opt':>8} "
        f"{'ii gaps (heur->opt)':>22}"
    )
    strictly_better = 0
    for name, row in results.items():
        gaps = ", ".join(
            f"{g['heuristic_ii']}->{g['optimal_ii'] if g['optimal_ii'] is not None else '?'}"
            for g in row["ii_gaps"]
        )
        print(
            f"{name:<10} {row['swp']:>8.2f} {row['modulo']:>8.2f} "
            f"{row['modulo-opt']:>8.2f} {gaps:>22}"
        )
        benchmark.extra_info[f"{name}:swp"] = round(row["swp"], 3)
        benchmark.extra_info[f"{name}:modulo"] = round(row["modulo"], 3)

        # Acceptance: the modulo backend never pays per-iteration cycles
        # over the legacy path on any loop-dominated workload...
        assert row["modulo"] <= row["swp"] + 1e-9, (name, row)
        assert row["modulo-opt"] <= row["swp"] + 1e-9, (name, row)
        if row["modulo"] < row["swp"] - 1e-9:
            strictly_better += 1
        # ...and the exhaustive backend never loses to the heuristic II.
        for gap in row["ii_gaps"]:
            if gap["optimal_ii"] is not None:
                assert gap["optimal_ii"] <= gap["heuristic_ii"], gap
            assert gap["heuristic_ii"] >= gap["mii"], gap

    # ...and is strictly faster on at least two of the three.
    assert strictly_better >= 2, results

    payload = {
        "benchmark": "E10-modulo",
        "model": "rs6000",
        "iterations": N,
        "workloads": {
            name: {
                "unroll": row["unroll"],
                "cycles_per_iter": {
                    "swp": round(row["swp"], 4),
                    "modulo": round(row["modulo"], 4),
                    "modulo-opt": round(row["modulo-opt"], 4),
                },
                "ii_gaps": row["ii_gaps"],
            }
            for name, row in results.items()
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")
