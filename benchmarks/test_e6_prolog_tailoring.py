"""E6 — prolog tailoring (the paper's save/restore figure).

Paper figure: the untailored prolog "saves all registers that are
killed anywhere in the procedure" (r28..r31) on every invocation, while
the tailored version saves r29/r31 on one arm, r28 (and conditionally
r30) on the other — each execution path stores only what it kills,
and "all paths reaching this point have the same set of saved
registers" so the unwinder stays correct.

We reproduce the figure's procedure shape, count dynamic save/restore
instructions per path under both strategies, and check the unwind
invariant.
"""

from repro.ir import parse_module
from repro.machine.interpreter import run_function
from repro.transforms import LinkageLowering, PrologTailoring
from repro.transforms.pass_manager import PassContext
from repro.transforms.prolog_tailoring import (
    check_unwind_invariant,
    dynamic_save_restore_count,
)

SUB = """
func sub(r3):
entry:
    CI cr0, r3, 0
    BT l1, cr0.lt
arm1:
    LI r29, 1
    LI r31, 2
    A r3, r29, r31
    RET
l1:
    LI r28, 3
    CI cr1, r3, -10
    BT l2, cr1.lt
arm2:
    LI r30, 4
    A r28, r28, r30
l2:
    A r3, r3, r28
    RET
"""

PATHS = {"arm1": [5], "arm2": [-5], "short": [-20]}


def lower(pass_obj):
    module = parse_module(SUB)
    ctx = PassContext(module)
    pass_obj.run_on_module(module, ctx)
    return module


def saves_per_path(module):
    out = {}
    for path, args in PATHS.items():
        r = run_function(module, "sub", args, record_trace=True)
        out[path] = dynamic_save_restore_count(r.trace)[0]
    return out


def run_experiment():
    tailored = lower(PrologTailoring())
    untailored = lower(LinkageLowering())
    check_unwind_invariant(tailored.functions["sub"])
    check_unwind_invariant(untailored.functions["sub"])
    return saves_per_path(tailored), saves_per_path(untailored)


def test_e6_prolog_tailoring(benchmark):
    tailored, untailored = benchmark.pedantic(run_experiment, iterations=1, rounds=1)

    print()
    print(f"{'path':<8} {'untailored saves':>17} {'tailored saves':>15}")
    for path in PATHS:
        print(f"{path:<8} {untailored[path]:>17} {tailored[path]:>15}")

    for path in PATHS:
        benchmark.extra_info[f"{path}_tailored"] = tailored[path]
        benchmark.extra_info[f"{path}_untailored"] = untailored[path]

    # Untailored: all four registers saved on every path.
    assert all(v == 4 for v in untailored.values())
    # Tailored: every path saves no more, and the paths that avoid some
    # kills save strictly less (arm1 kills only r29/r31; the short path
    # never kills r30).
    assert all(tailored[p] <= untailored[p] for p in PATHS)
    assert tailored["arm1"] < 4
    assert tailored["short"] < 4
