"""E2 — compile-time and code-size cost of the VLIW pipeline.

Paper: "Compared to the -O option of xlc, there was an average compile
time increase of 36% and an average code size increase of 8% using
static binding. The most time consuming transformation is VLIW
scheduling."

We measure both over the suite. Compile time rises by a large factor
(the VLIW pipeline simply runs many more passes — the paper's 36% is
relative to a full production compiler front end, which we don't model),
and VLIW scheduling dominates the pass timings, as the paper states.
Code size growth is larger than the paper's +8% because our workloads
are all hot kernel, not full binaries (see EXPERIMENTS.md).
"""

import json
import time
from pathlib import Path

from repro.ir import format_module
from repro.perf.memo import CompileCache, config_key
from repro.pipeline import baseline_passes, compile_module, vliw_passes
from repro.transforms.pass_manager import PassManager, PassContext
from repro.workloads import suite


def _compile_suite(level):
    total_time = 0.0
    total_size = 0
    timings = {}
    for wl in suite():
        result = compile_module(wl.fresh_module(), level)
        total_time += result.compile_seconds
        total_size += result.static_instructions
        for name, secs in result.pass_timings.items():
            timings[name] = timings.get(name, 0.0) + secs
    return total_time, total_size, timings


def test_e2_compile_cost(benchmark):
    base_time, base_size, _ = _compile_suite("base")
    vliw_time, vliw_size, vliw_timings = benchmark.pedantic(
        lambda: _compile_suite("vliw"), iterations=1, rounds=1
    )

    time_ratio = vliw_time / base_time
    size_ratio = vliw_size / base_size
    slowest = max(vliw_timings.items(), key=lambda kv: kv[1])

    print()
    print(f"compile time: base {base_time*1e3:.1f} ms, vliw {vliw_time*1e3:.1f} ms "
          f"({time_ratio:.2f}x)")
    print(f"code size:    base {base_size} instrs, vliw {vliw_size} instrs "
          f"({size_ratio:.2f}x)")
    print(f"most expensive pass: {slowest[0]} ({slowest[1]*1e3:.1f} ms)")

    benchmark.extra_info["compile_time_ratio"] = round(time_ratio, 3)
    benchmark.extra_info["code_size_ratio"] = round(size_ratio, 3)
    benchmark.extra_info["slowest_pass"] = slowest[0]

    # Shape: compiling costs more, the scheduler dominates, size growth
    # is bounded.
    assert time_ratio > 1.3
    assert "sched" in slowest[0]
    assert 1.0 < size_ratio < 3.0


# --- guarded compile cost -------------------------------------------------
#
# The guarded pipeline (rollback + differential checking + speculation
# sanitizer) re-executes seeded entries after every pass, which dwarfs the
# plain compile.  The perf layer attacks this on two axes:
#
#  * within one compile: copy-on-write snapshots + fingerprint memoization
#    skip re-validating functions a pass did not change, and the sanitizer
#    skips optimized-side runs whose verdict the baseline already decides;
#  * across compiles: a CompileCache keyed by (module fingerprint, level,
#    pipeline config) serves repeated compiles of identical modules —
#    the benchmark-repetition scenario — without running a single pass.
#
# Both paths must stay bit-identical to the legacy (PR-2) cost model.

GUARDED = dict(resilience="rollback", sanitize=True)
LEGACY = dict(cow_snapshots=False, memoize=False)
REPS = 3
BENCH_JSON = Path("BENCH_compile.json")
REFERENCE_JSON = Path(__file__).parent / "compile_cost_reference.json"


def _guarded_suite(fast):
    """One guarded suite compile; returns (wall s, outputs, counters)."""
    kwargs = dict(GUARDED) if fast else {**GUARDED, **LEGACY}
    outputs = {}
    counters = {}
    start = time.perf_counter()
    for wl in suite():
        result = compile_module(wl.fresh_module(), "vliw", **kwargs)
        outputs[wl.name] = format_module(result.module)
        for key, val in result.resilience.counters.items():
            counters[key] = counters.get(key, 0) + val
    return time.perf_counter() - start, outputs, counters


def _repeated_fast_suite(reps):
    """``reps`` guarded compiles of the same suite through a CompileCache."""
    cache = CompileCache()
    key = config_key("vliw", **GUARDED)
    outputs = []
    start = time.perf_counter()
    for _ in range(reps):
        rep = {}
        for wl in suite():
            module = wl.fresh_module()
            result = cache.lookup(module, key)
            if result is None:
                result = compile_module(module, "vliw", **GUARDED)
                cache.store(module, key, result)
            rep[wl.name] = format_module(result.module)
        outputs.append(rep)
    return time.perf_counter() - start, outputs, cache


def test_e2_guarded_compile_cost(benchmark):
    plain_start = time.perf_counter()
    _compile_suite("vliw")
    plain_seconds = time.perf_counter() - plain_start

    legacy_seconds, legacy_out, _ = _guarded_suite(fast=False)
    fast_seconds, fast_out, fast_counters = benchmark.pedantic(
        lambda: _guarded_suite(fast=True), iterations=1, rounds=1
    )

    # Legacy has no cross-compile state, so its repetition cost is linear
    # by construction; extrapolating keeps the benchmark runtime bounded.
    repeated_seconds, repeated_out, cache = _repeated_fast_suite(REPS)
    legacy_repeated = legacy_seconds * REPS

    single_speedup = legacy_seconds / fast_seconds
    repeated_speedup = legacy_repeated / repeated_seconds
    fast_over_plain = fast_seconds / plain_seconds

    print()
    print(f"plain vliw suite:        {plain_seconds:6.2f} s")
    print(f"guarded legacy (PR-2):   {legacy_seconds:6.2f} s")
    print(f"guarded fast:            {fast_seconds:6.2f} s "
          f"({single_speedup:.2f}x single-shot)")
    print(f"{REPS} reps legacy (extrap.): {legacy_repeated:6.2f} s")
    print(f"{REPS} reps fast + memo:     {repeated_seconds:6.2f} s "
          f"({repeated_speedup:.2f}x, {cache.hits} cache hits)")

    payload = {
        "plain_seconds": round(plain_seconds, 3),
        "guarded_legacy_seconds": round(legacy_seconds, 3),
        "guarded_fast_seconds": round(fast_seconds, 3),
        "single_shot_speedup": round(single_speedup, 3),
        "repetitions": REPS,
        "repeated_legacy_seconds": round(legacy_repeated, 3),
        "repeated_fast_seconds": round(repeated_seconds, 3),
        "repeated_speedup": round(repeated_speedup, 3),
        "guarded_fast_over_plain": round(fast_over_plain, 3),
        "cache": {"hits": cache.hits, "misses": cache.misses},
        "counters": fast_counters,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    benchmark.extra_info.update(
        single_shot_speedup=payload["single_shot_speedup"],
        repeated_speedup=payload["repeated_speedup"],
        guarded_fast_over_plain=payload["guarded_fast_over_plain"],
    )

    # Fast mode is an optimisation, not a semantics change: bit-identical
    # to the legacy cost model, and every cached rep matches the cold one.
    assert fast_out == legacy_out
    assert all(rep == fast_out for rep in repeated_out)
    # Reps 2..N are pure cache hits.
    assert cache.hits == (REPS - 1) * len(list(suite()))
    # The acceptance bar: guarded compiles of the full workload suite run
    # at least 2x faster than the PR-2 cost model in the repetition
    # scenario, and single-shot must never be slower than legacy.
    assert repeated_speedup >= 2.0
    assert single_speedup >= 0.95
    # The within-compile machinery actually engaged.
    assert fast_counters.get("snapshot.fn_reused", 0) > 0
    assert fast_counters.get("diff.entries_memoized", 0) > 0
    assert fast_counters.get("sanitize.entries_skipped", 0) > 0
