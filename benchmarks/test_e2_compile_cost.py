"""E2 — compile-time and code-size cost of the VLIW pipeline.

Paper: "Compared to the -O option of xlc, there was an average compile
time increase of 36% and an average code size increase of 8% using
static binding. The most time consuming transformation is VLIW
scheduling."

We measure both over the suite. Compile time rises by a large factor
(the VLIW pipeline simply runs many more passes — the paper's 36% is
relative to a full production compiler front end, which we don't model),
and VLIW scheduling dominates the pass timings, as the paper states.
Code size growth is larger than the paper's +8% because our workloads
are all hot kernel, not full binaries (see EXPERIMENTS.md).
"""

from repro.pipeline import baseline_passes, compile_module, vliw_passes
from repro.transforms.pass_manager import PassManager, PassContext
from repro.workloads import suite


def _compile_suite(level):
    total_time = 0.0
    total_size = 0
    timings = {}
    for wl in suite():
        result = compile_module(wl.fresh_module(), level)
        total_time += result.compile_seconds
        total_size += result.static_instructions
        for name, secs in result.pass_timings.items():
            timings[name] = timings.get(name, 0.0) + secs
    return total_time, total_size, timings


def test_e2_compile_cost(benchmark):
    base_time, base_size, _ = _compile_suite("base")
    vliw_time, vliw_size, vliw_timings = benchmark.pedantic(
        lambda: _compile_suite("vliw"), iterations=1, rounds=1
    )

    time_ratio = vliw_time / base_time
    size_ratio = vliw_size / base_size
    slowest = max(vliw_timings.items(), key=lambda kv: kv[1])

    print()
    print(f"compile time: base {base_time*1e3:.1f} ms, vliw {vliw_time*1e3:.1f} ms "
          f"({time_ratio:.2f}x)")
    print(f"code size:    base {base_size} instrs, vliw {vliw_size} instrs "
          f"({size_ratio:.2f}x)")
    print(f"most expensive pass: {slowest[0]} ({slowest[1]*1e3:.1f} ms)")

    benchmark.extra_info["compile_time_ratio"] = round(time_ratio, 3)
    benchmark.extra_info["code_size_ratio"] = round(size_ratio, 3)
    benchmark.extra_info["slowest_pass"] = slowest[0]

    # Shape: compiling costs more, the scheduler dominates, size growth
    # is bounded.
    assert time_ratio > 1.3
    assert "sched" in slowest[0]
    assert 1.0 < size_ratio < 3.0
