"""E4 — profiling directed feedback gain.

Paper: the PDF optimisations (scheduling heuristics, basic block
re-ordering, branch reversal) "have been implemented and result in a
4-5% additional improvement on SPECint92 (using the short SPEC inputs
for generating profiling data)".

We train on each workload's short input and measure the reference input,
exactly the paper's methodology. Expected shape: PDF improves the
geomean over the plain VLIW level; benchmarks with skewed branches
(compress's probe loop, gcc's dispatch) benefit most.
"""

import math

from repro.evaluate import measure, reference_value, train_profile
from repro.workloads import suite


def _geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def run_pdf_experiment():
    rows = []
    for wl in suite():
        ref = reference_value(wl)
        base = measure(wl, "base", check_against=ref)
        vliw = measure(wl, "vliw", check_against=ref)
        profile, plan = train_profile(wl)
        pdf = measure(wl, "vliw", profile=profile, plan=plan, check_against=ref)
        rows.append((wl.name, base.cycles, vliw.cycles, pdf.cycles))
    return rows


def test_e4_pdf_gain(benchmark):
    rows = benchmark.pedantic(run_pdf_experiment, iterations=1, rounds=1)

    print()
    print(f"{'bench':<10} {'base':>8} {'vliw':>8} {'vliw+pdf':>9} {'vliw-spd':>9} {'pdf-spd':>8}")
    vliw_speed, pdf_speed = [], []
    for name, base, vliw, pdf in rows:
        sv, sp = base / vliw, base / pdf
        vliw_speed.append(sv)
        pdf_speed.append(sp)
        print(f"{name:<10} {base:>8} {vliw:>8} {pdf:>9} {sv:>9.3f} {sp:>8.3f}")
    gv, gp = _geomean(vliw_speed), _geomean(pdf_speed)
    print(f"geomean: vliw {gv:.3f}, vliw+pdf {gp:.3f} "
          f"(pdf adds {100 * (gp / gv - 1):+.1f}%)")

    benchmark.extra_info["vliw_geomean"] = round(gv, 4)
    benchmark.extra_info["pdf_geomean"] = round(gp, 4)
    benchmark.extra_info["pdf_additional_pct"] = round(100 * (gp / gv - 1), 2)

    # Shape: PDF adds on top of VLIW overall (paper: +4-5%; we accept
    # any positive addition up to 10%).
    assert gp > gv
    assert gp / gv < 1.10
    # compress is the canonical PDF win: its low-trip probe loop stops
    # being unrolled and flips from regression to gain.
    by_name = {r[0]: r for r in rows}
    _, cb, cv, cp = by_name["compress"]
    assert cp < cv
