"""E12 — chaos soak: SIGKILL mid-load, filesystem faults, full recovery.

Runs ``repro serve`` as a real subprocess (a SIGKILL you can believe in)
with the chaos filesystem armed on its journal and cache shard, drives
it with concurrent clients, kills it -9 mid-load, restarts it on the
same ``--state-dir``/``--cache-dir`` and proves the crash-durability
contract end to end:

- **zero corrupt results served** — every binary served in either epoch
  is executed and differentially checked against its reference;
- **100% eventual completion** — every request the clients submitted is
  eventually answered ``ok`` (phase 1 or the post-restart re-drive) and
  the journal's recovered backlog drains to zero;
- **bounded recovery** — the restarted service reaches ``healthz`` 200
  (through the 503 ``recovering`` window) inside ``RECOVERY_BOUND``;
- **fs-fault mix above 10%** — injected ENOSPC/EIO/torn writes as a
  fraction of chaos-fs operations, proven from the service's own
  counters, with every armed kind observed firing;
- **state survives restart** — counters restored from the checkpoint,
  journal replay evidenced, and the SIGTERM at the end exits 0 (the
  graceful-shutdown satellite, asserted out-of-process).

Environment knobs (CI runs 60s / 2 workers): ``CHAOS_SOAK_SECONDS``,
``CHAOS_SOAK_WORKERS``. Writes ``BENCH_chaos.json``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.ir import format_module, parse_module
from repro.machine import run_function
from repro.robustness.chaosfs import ChaosSpec
from repro.robustness.faults import FaultPlan
from repro.workloads import suite

SOAK_SECONDS = float(os.environ.get("CHAOS_SOAK_SECONDS", "8"))
WORKERS = int(os.environ.get("CHAOS_SOAK_WORKERS", "2"))
CLIENT_THREADS = 6
HOSTAGES = 4
RECOVERY_BOUND = 30.0
BENCH_JSON = Path("BENCH_chaos.json")

#: The fs-fault mix. Writes are the hot path (journal appends, shard
#: publications); rates are chosen so injections exceed 10% of all
#: chaos-fs operations with margin. ``crash`` is deliberately absent —
#: this soak's power loss is a real SIGKILL, not a simulated one.
CHAOS_SPECS = [
    ChaosSpec(kind="enospc", op="write", p=0.06),
    ChaosSpec(kind="eio", op="write", p=0.06),
    ChaosSpec(kind="torn-write", op="write", p=0.05),
    ChaosSpec(kind="eio", op="fsync", p=0.10),
    ChaosSpec(kind="eio", op="fsync-dir", p=0.15),
]


class ServerProc:
    """One ``repro serve`` subprocess: spawn, log-tail, talk, kill."""

    def __init__(self, state_dir, cache_dir, plan_path, port=0):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path("src").resolve())
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--port", str(port), "--workers", str(WORKERS),
             "--deadline", "5", "--grace", "1",
             "--state-dir", str(state_dir), "--cache-dir", str(cache_dir),
             "--checkpoint-every", "32", "--drain-seconds", "10",
             "--worker-mem-mb", "256",
             "--fault-plan", str(plan_path), "--chaos-seed", "0"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.started_at = time.monotonic()
        self.lines = []
        self._lock = threading.Lock()
        self._tail = threading.Thread(target=self._drain, daemon=True)
        self._tail.start()
        self.port = self._await_port()

    def _drain(self):
        for line in self.proc.stderr:
            with self._lock:
                self.lines.append(line.rstrip())

    def log_line(self, needle, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                for line in self.lines:
                    if needle in line:
                        return line
            if self.proc.poll() is not None:
                break
            time.sleep(0.05)
        with self._lock:
            tail = "\n".join(self.lines[-20:])
        raise AssertionError(f"no {needle!r} in server log within {timeout}s:\n{tail}")

    def _await_port(self):
        line = self.log_line("listening on http://")
        return int(line.rsplit(":", 1)[1].split()[0])

    def call(self, method, path, body=None, timeout=15.0):
        conn = HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            conn.request(method, path,
                         body=json.dumps(body) if body is not None else None)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def sigkill(self):
        self.proc.kill()  # SIGKILL: no handler, no drain, no flush
        self.proc.wait(timeout=10)

    def sigterm_and_wait(self, timeout=30.0):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


def _corpus():
    entries = []
    for wl in suite():
        module = wl.fresh_module()
        reference = run_function(
            module, wl.entry, list(wl.args), max_steps=10_000_000
        ).value
        entries.append({
            "name": wl.name,
            "ir": format_module(wl.fresh_module()),
            "entry": wl.entry,
            "args": list(wl.args),
            "reference": reference,
        })
    return entries


def _body(index, corpus):
    entry = corpus[index % len(corpus)]
    body = {"ir": entry["ir"], "level": "vliw", "id": str(index)}
    if index % 5 != 0:
        # Unique config key: a guaranteed cache miss, so the request is
        # journaled and the shard is written — the chaos fs stays hot.
        body["options"] = {"soak_nonce": index}
    return body, entry


def _drive(server, corpus, seconds, results, start_index=0):
    """Hammer the server from CLIENT_THREADS; record outcomes by index.

    ``results[index] = (response_dict | None, entry)`` — None means the
    connection died (the SIGKILL window) and the request is in doubt.
    """
    lock = threading.Lock()
    counter = {"next": start_index}
    stop_at = time.monotonic() + seconds
    stop = threading.Event()

    def client():
        while time.monotonic() < stop_at and not stop.is_set():
            with lock:
                index = counter["next"]
                counter["next"] += 1
            body, entry = _body(index, corpus)
            try:
                _status, data = server.call("POST", "/compile", body)
            except Exception:
                data = None
            with lock:
                results[index] = (data, entry)

    threads = [threading.Thread(target=client) for _ in range(CLIENT_THREADS)]
    for thread in threads:
        thread.start()
    return threads, stop, counter


def _take_hostages(server, corpus, count):
    """Slow in-flight requests so the SIGKILL provably interrupts work."""

    def hostage(index):
        body, _entry = _body(10_000 + index, corpus)
        body["id"] = f"hostage-{index}"
        body["inject"] = {"kind": "soft-hang", "seconds": 30.0, "attempts": [0]}
        try:
            server.call("POST", "/compile", body, timeout=60.0)
        except Exception:
            pass  # the point is to die mid-flight

    threads = [threading.Thread(target=hostage, args=(i,), daemon=True)
               for i in range(count)]
    for thread in threads:
        thread.start()
    return threads


def _check_binary(data, entry):
    module = parse_module(data["ir"])
    value = run_function(
        module, entry["entry"], list(entry["args"]), max_steps=10_000_000
    ).value
    assert value == entry["reference"], (
        f"{entry['name']}: served binary computed {value}, "
        f"reference {entry['reference']} (level {data['level_served']})"
    )


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_e12_chaos_soak(tmp_path):
    corpus = _corpus()
    state_dir = tmp_path / "state"
    cache_dir = tmp_path / "cache"
    plan_path = tmp_path / "chaos-plan.json"
    plan = FaultPlan()
    plan.chaos.extend(CHAOS_SPECS)
    plan_path.write_text(plan.to_json())

    # ---- phase 1: load, then pull the plug ------------------------------
    first = ServerProc(state_dir, cache_dir, plan_path)
    results = {}
    kill_after = max(1.0, SOAK_SECONDS * 0.5)
    threads, stop, _counter = _drive(first, corpus, SOAK_SECONDS, results)
    time.sleep(kill_after)
    _status, pre_kill = first.call("GET", "/stats")
    _take_hostages(first, corpus, HOSTAGES)
    time.sleep(0.7)  # hostages are now journaled and mid-compile
    first.sigkill()
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)

    answered = {i: (d, e) for i, (d, e) in results.items() if d is not None}
    in_doubt = [i for i, (d, _e) in results.items() if d is None]
    assert answered, "phase 1 served nothing — soak setup is broken"
    assert all(d["status"] == "ok" for d, _e in answered.values()), [
        (d["status"], d["detail"]) for d, _e in answered.values()
        if d["status"] != "ok"
    ][:5]
    pre_kill_total = pre_kill["requests"]["total"]
    assert pre_kill_total > 0

    # ---- phase 2: restart on the same state, measure recovery -----------
    second = ServerProc(state_dir, cache_dir, plan_path)
    recovery_line = second.log_line("journal recovery")
    summary = json.loads(recovery_line.split("journal recovery ", 1)[1])
    assert summary["replayed"] > 0, summary  # the journal really drove this
    assert summary["recovered_inflight"] >= 1, summary  # hostages were caught

    recovered_at = None
    while time.monotonic() - second.started_at < RECOVERY_BOUND:
        try:
            status, health = second.call("GET", "/healthz", timeout=5.0)
        except Exception:
            time.sleep(0.1)
            continue
        if status == 200 and health["status"] == "ok":
            recovered_at = time.monotonic() - second.started_at
            break
        assert health["status"] in ("recovering", "ok"), health
        time.sleep(0.1)
    assert recovered_at is not None, (
        f"service not healthy within {RECOVERY_BOUND}s of restart"
    )

    _status, post_recovery = second.call("GET", "/stats")
    assert post_recovery["journal"]["recovery_pending"] == 0
    # Counters restored from the checkpoint: the restarted process
    # remembers (at least) everything up to its last checkpoint, never
    # restarts from zero.
    assert post_recovery["requests"]["total"] > 0

    # ---- eventual completion: re-drive everything in doubt --------------
    still_failing = []
    for index in in_doubt:
        body, entry = _body(index, corpus)
        data = None
        for _attempt in range(3):
            try:
                _status, data = second.call("POST", "/compile", body)
                break
            except Exception:
                time.sleep(0.2)
        if data is None or data["status"] != "ok":
            still_failing.append((index, data))
        else:
            answered[index] = (data, entry)
    assert not still_failing, still_failing[:5]
    completion = len(answered) / len(results)
    assert completion == 1.0

    # ---- zero corrupt results -------------------------------------------
    checked = set()
    for data, entry in answered.values():
        key = (entry["name"], hash(data["ir"]))
        if key in checked:
            continue
        _check_binary(data, entry)
        checked.add(key)

    # ---- fault mix: >10% of fs ops, every armed kind observed -----------
    _status, final_stats = second.call("GET", "/stats")
    fs_ops = (pre_kill["journal"]["fs.ops"]
              + final_stats["journal"]["fs.ops"])
    fs_injected = (pre_kill["journal"]["fs.injected.total"]
                   + final_stats["journal"]["fs.injected.total"])
    fault_rate = fs_injected / max(1, fs_ops)
    assert fault_rate > 0.10, (
        f"fs fault mix only {fault_rate:.1%} ({fs_injected}/{fs_ops} ops)"
    )
    for kind in ("enospc", "eio", "torn_write"):
        fired = (pre_kill["journal"][f"fs.injected.{kind}"]
                 + final_stats["journal"][f"fs.injected.{kind}"])
        assert fired > 0, f"armed fault kind {kind} never fired"

    # ---- graceful exit (the SIGTERM satellite, out-of-process) ----------
    returncode = second.sigterm_and_wait()
    assert returncode == 0, f"SIGTERM exit code {returncode}"
    second.log_line("shutdown", timeout=5.0)

    BENCH_JSON.write_text(json.dumps({
        "soak_seconds": SOAK_SECONDS,
        "workers": WORKERS,
        "client_threads": CLIENT_THREADS,
        "requests_submitted": len(results),
        "answered_before_kill": len(results) - len(in_doubt),
        "in_doubt_at_kill": len(in_doubt),
        "completion_fraction": completion,
        "distinct_binaries_checked": len(checked),
        "recovery": {
            "seconds_to_healthy": round(recovered_at, 2),
            "bound_seconds": RECOVERY_BOUND,
            "replayed_records": summary["replayed"],
            "recovered_inflight": summary["recovered_inflight"],
            "corrupt_records_skipped": summary["corrupt_skipped"],
            "completed_before_crash": summary["completed_before_crash"],
        },
        "fault_mix": {
            "fs_ops": fs_ops,
            "fs_injected": fs_injected,
            "rate": round(fault_rate, 4),
            "by_kind": {
                kind: (pre_kill["journal"].get(f"fs.injected.{kind}", 0)
                       + final_stats["journal"].get(f"fs.injected.{kind}", 0))
                for kind in ("enospc", "eio", "torn_write", "crash")
            },
        },
        "journal": {
            key: final_stats["journal"].get(key)
            for key in ("journal.appends", "journal.append_errors",
                        "journal.checkpoints", "journal.replayed",
                        "journal.corrupt_skipped")
        },
        "store": {
            key: final_stats["cache"].get(key)
            for key in ("store.stores", "store.quarantined",
                        "store.evictions", "store.write_errors",
                        "store.disabled")
        },
        "graceful_exit_code": returncode,
    }, indent=2) + "\n")
