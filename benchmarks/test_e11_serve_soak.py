"""E11 — fault-injected soak of the compile service.

Drives :class:`repro.serve.CompileService` (real worker processes) with
a multi-threaded client mix in which **over 10% of requests carry an
injected fault**: abrupt worker death, unresponsive hangs that force
the supervisor's hard-kill path, soft stalls caught by the worker's own
alarm, and persistent pass faults that exercise the degradation ladder.

The acceptance contract asserted here:

- **zero dropped requests** — every submitted request gets a response,
  and every response is ``ok``;
- **100% correct results** — each distinct compiled binary is executed
  and differentially checked against the unoptimised reference;
- **>= 90% served at the requested level** — transient faults heal via
  same-level retry; only the deliberately-poisoned minority degrades;
- **>= 3 worker crashes survived** with automatic respawn;
- **> 5x throughput** over serial ``compile_module`` in the warm-cache
  phase.

Environment knobs (CI runs 60s / 2 workers; the default is a quick
local soak): ``SERVE_SOAK_SECONDS``, ``SERVE_SOAK_WORKERS``.

Writes ``BENCH_serve.json`` next to the working directory, in the same
spirit as E2's ``BENCH_compile.json``.
"""

import json
import os
import threading
import time
from pathlib import Path

from repro.ir import parse_module
from repro.machine import run_function
from repro.perf.memo import CompileCache
from repro.pipeline import compile_module
from repro.serve import CompileService, ServeRequest, WorkerPool
from repro.serve.breaker import CircuitBreaker
from repro.workloads import suite

SOAK_SECONDS = float(os.environ.get("SERVE_SOAK_SECONDS", "8"))
WORKERS = int(os.environ.get("SERVE_SOAK_WORKERS", "2"))
CLIENT_THREADS = 8
WARM_REQUESTS = 200
BENCH_JSON = Path("BENCH_serve.json")

#: A module kept distinct from the suite so its breaker entries (its
#: vliw pipeline is persistently poisoned) never contaminate the
#: fingerprints the healthy traffic compiles.
POISON_SRC = """
func main(r3):
    AI r3, r3, 40
    AI r3, r3, 2
    RET
"""
POISON_REF = 42  # main(0)


class Corpus:
    """Request corpus: suite workloads plus the poisoned module."""

    def __init__(self):
        self.entries = []
        for wl in suite():
            module = wl.fresh_module()
            reference = run_function(
                module, wl.entry, list(wl.args), max_steps=10_000_000
            ).value
            self.entries.append({
                "name": wl.name,
                "ir": _render(wl.fresh_module()),
                "entry": wl.entry,
                "args": list(wl.args),
                "reference": reference,
            })

    def pick(self, index):
        return self.entries[index % len(self.entries)]


def _render(module):
    from repro.ir import format_module

    return format_module(module)


def _plan_request(index, corpus):
    """The deterministic client mix; >10% of requests carry a fault."""
    entry = corpus.pick(index)
    request = ServeRequest(
        ir=entry["ir"], level="vliw", request_id=str(index)
    )
    fault = "none"
    if index % 10 == 7:
        # Transient: the worker dies on attempt 0, the retry heals.
        request.inject = {"kind": "worker-crash", "attempts": [0]}
        fault = "worker-crash"
    elif index % 40 == 13:
        # Unresponsive hang: only the supervisor's hard kill helps.
        request.inject = {"kind": "hang", "seconds": 30.0, "attempts": [0]}
        request.deadline = 1.5
        fault = "hang"
    elif index % 40 == 33:
        # Soft stall: the worker's own alarm answers "timeout".
        request.inject = {"kind": "soft-hang", "seconds": 10.0, "attempts": [0]}
        request.deadline = 1.5
        fault = "soft-hang"
    elif index % 15 == 4:
        # Persistent vliw poison: exercises true degradation.
        request = ServeRequest(
            ir=POISON_SRC,
            level="vliw",
            options={"fault_plan": "vliw-scheduling:raise:0"},
            request_id=str(index),
        )
        entry = {
            "name": "poison",
            "entry": "main",
            "args": [0],
            "reference": POISON_REF,
        }
        fault = "poison-plan"
    return request, entry, fault


def _soak(service, corpus, seconds):
    responses = []
    lock = threading.Lock()
    counter = {"next": 0}
    stop_at = time.monotonic() + seconds

    def client():
        while time.monotonic() < stop_at:
            with lock:
                index = counter["next"]
                counter["next"] += 1
            request, entry, fault = _plan_request(index, corpus)
            response = service.compile(request)
            with lock:
                responses.append((response, entry, fault))

    threads = [threading.Thread(target=client) for _ in range(CLIENT_THREADS)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    return responses, counter["next"], elapsed


def _check_differentially(responses):
    """Execute each distinct compiled binary against its reference."""
    checked = {}
    for response, entry, _fault in responses:
        key = (entry["name"], hash(response.ir))
        if key in checked:
            continue
        module = parse_module(response.ir)
        value = run_function(
            module, entry["entry"], list(entry["args"]), max_steps=10_000_000
        ).value
        assert value == entry["reference"], (
            f"{entry['name']}: served binary computed {value}, "
            f"reference {entry['reference']} (level {response.level_served})"
        )
        checked[key] = True
    return len(checked)


def _warm_phase(service, corpus):
    """Warm-cache throughput vs serial compile_module."""
    lock = threading.Lock()
    counter = {"next": 0}

    def client():
        while True:
            with lock:
                index = counter["next"]
                if index >= WARM_REQUESTS:
                    return
                counter["next"] += 1
            entry = corpus.pick(index)
            response = service.compile(ServeRequest(ir=entry["ir"], level="vliw"))
            assert response.status == "ok"

    threads = [threading.Thread(target=client) for _ in range(CLIENT_THREADS)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    warm_seconds = time.perf_counter() - t0

    serial_t0 = time.perf_counter()
    serial_compiles = 0
    for entry in corpus.entries:
        compile_module(parse_module(entry["ir"]), "vliw")
        serial_compiles += 1
    serial_seconds = time.perf_counter() - serial_t0

    warm_rps = WARM_REQUESTS / warm_seconds
    serial_rps = serial_compiles / serial_seconds
    return {
        "requests": WARM_REQUESTS,
        "seconds": round(warm_seconds, 3),
        "requests_per_second": round(warm_rps, 1),
        "serial_compiles": serial_compiles,
        "serial_seconds": round(serial_seconds, 3),
        "serial_compiles_per_second": round(serial_rps, 2),
        "speedup_over_serial": round(warm_rps / serial_rps, 1),
    }


def test_e11_serve_soak():
    corpus = Corpus()
    pool = WorkerPool(workers=WORKERS, deadline=5.0, grace=0.5,
                      backoff_base=0.02, backoff_cap=0.5)
    service = CompileService(
        pool,
        cache=CompileCache(max_entries=256),
        deadline=5.0,
        breaker=CircuitBreaker(threshold=3, cooldown=300.0),
    )
    try:
        responses, submitted, elapsed = _soak(service, corpus, SOAK_SECONDS)

        # -- zero dropped, all ok -------------------------------------------
        assert len(responses) == submitted
        bad = [
            (r.request_id, r.status, r.detail)
            for r, _e, _f in responses if r.status != "ok"
        ]
        assert not bad, f"non-ok responses: {bad[:5]}"

        # -- differential correctness ---------------------------------------
        distinct_binaries = _check_differentially(responses)

        # -- degradation bounded --------------------------------------------
        degraded = sum(1 for r, _e, _f in responses if r.degraded)
        requested_level_fraction = 1.0 - degraded / len(responses)
        assert requested_level_fraction >= 0.90, (
            f"only {requested_level_fraction:.1%} served at requested level"
        )

        # -- fault coverage and crash recovery ------------------------------
        faults = {}
        for _r, _e, fault in responses:
            faults[fault] = faults.get(fault, 0) + 1
        injected = sum(n for kind, n in faults.items() if kind != "none")
        fault_fraction = injected / len(responses)
        assert fault_fraction >= 0.10, f"fault mix only {fault_fraction:.1%}"

        pool_stats = pool.stats()
        assert pool_stats["crashes"] >= 3, pool_stats
        assert pool_stats["respawns"] >= 3, pool_stats
        assert pool_stats["alive"] >= 1

        # -- warm-cache throughput ------------------------------------------
        warm = _warm_phase(service, corpus)
        assert warm["speedup_over_serial"] > 5.0, warm

        stats = service.stats()
        payload = {
            "soak_seconds": round(elapsed, 2),
            "workers": WORKERS,
            "client_threads": CLIENT_THREADS,
            "requests": submitted,
            "throughput_rps": round(submitted / elapsed, 1),
            "latency_ms": {
                "p50": round(stats["latency_ms"]["p50"], 2),
                "p99": round(stats["latency_ms"]["p99"], 2),
            },
            "completion_fraction": 1.0,
            "requested_level_fraction": round(requested_level_fraction, 4),
            "degraded": degraded,
            "distinct_binaries_checked": distinct_binaries,
            "fault_fraction": round(fault_fraction, 4),
            "faults_injected": faults,
            "request_failures_seen": stats["failures"],
            "pool": {
                "crashes": pool_stats["crashes"],
                "timeouts": pool_stats["timeouts"],
                "respawns": pool_stats["respawns"],
            },
            "breaker": stats["breaker"],
            "cache": stats["cache"],
            "dedupe": stats["dedupe"],
            "warm_cache": warm,
        }
        BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    finally:
        pool.stop()
