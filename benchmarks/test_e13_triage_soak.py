"""E13 — triage soak: a buggy pass is found, named and quarantined live.

Runs ``repro serve`` as a real subprocess in drill mode — a fault plan
injects a deterministic crash into one vliw pass (``limited-combining``)
on every activation — and proves the self-healing contract end to end:

- **convergence** — the flight recorder captures the crashes, the
  background triage worker replays/bisects/reduces them in isolation,
  and once two distinct modules implicate the same pass the service
  quarantines exactly that pass (and no other);
- **recovered throughput** — after convergence, fresh requests are
  served at the *requested* ``vliw`` level (the guilty pass ablated,
  advertised per-response via ``quarantined_passes``) instead of being
  degraded to ``base``; ≥95% of the steady-state drive must hit vliw;
- **zero corrupt results** — every distinct binary served in any phase
  and at any level is executed and differentially checked against the
  interpreter reference;
- **durability** — SIGKILL, restart on the same ``--state-dir``: the
  quarantine is active *immediately* (journal checkpoint, not
  re-convergence) and the next vliw request is already ablated;
- **promotion** — the reduced finding lands in the ``--promote-corpus``
  directory as a corpus case naming the guilty pass;
- **graceful exit** — the final SIGTERM exits 0.

Environment knobs (CI runs single-core): ``TRIAGE_SOAK_WORKERS``,
``TRIAGE_CONVERGE_BOUND``. Writes ``BENCH_triage.json``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.fuzz.corpus import load_cases
from repro.ir import parse_module
from repro.machine import run_function

WORKERS = int(os.environ.get("TRIAGE_SOAK_WORKERS", "2"))
CONVERGE_BOUND = float(os.environ.get("TRIAGE_CONVERGE_BOUND", "60"))
STEADY_REQUESTS = 20
GUILTY = "limited-combining"
FAULT_PLAN = f"{GUILTY}:raise:0"  # fire on every activation
BENCH_JSON = Path("BENCH_triage.json")

#: Small hand-written loop kernels: three *distinct* modules (the
#: quarantine threshold demands evidence from 2+ fingerprints), each
#: cheap enough that the in-process triage replay/bisect/reduce cycle
#: stays well under a second on a single core.
MODULES = {
    "sumodd": """
func main(r3):
    MTCTR r3
    LI r4, 0
    LI r5, 1
loop:
    A r4, r4, r5
    AI r5, r5, 2
    BCT loop
    LR r3, r4
    RET
""",
    "poly": """
func main(r3):
    MTCTR r3
    LI r4, 1
loop:
    MULI r4, r4, 2
    AI r4, r4, 1
    BCT loop
    LR r3, r4
    RET
""",
    "mixer": """
func main(r3):
    MTCTR r3
    LI r4, 7
loop:
    MULI r5, r4, 3
    XOR r4, r4, r5
    AI r4, r4, 1
    BCT loop
    LR r3, r4
    RET
""",
}
ARGS = [6]


class ServerProc:
    """One ``repro serve`` subprocess: spawn, log-tail, talk, kill."""

    def __init__(self, state_dir, promote_dir, port=0):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path("src").resolve())
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve",
             "--port", str(port), "--workers", str(WORKERS),
             "--deadline", "10", "--grace", "1",
             "--state-dir", str(state_dir), "--checkpoint-every", "8",
             "--drain-seconds", "10",
             "--fault-plan", FAULT_PLAN,
             "--quarantine-threshold", "2",
             # Longer than any sane soak: no half-open probe re-enables
             # the broken pass mid-test and muddies the vliw fraction.
             "--quarantine-cooldown", "3600",
             "--triage-deadline", "30",
             "--promote-corpus", str(promote_dir)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.started_at = time.monotonic()
        self.lines = []
        self._lock = threading.Lock()
        self._tail = threading.Thread(target=self._drain, daemon=True)
        self._tail.start()
        self.port = self._await_port()

    def _drain(self):
        for line in self.proc.stderr:
            with self._lock:
                self.lines.append(line.rstrip())

    def log_line(self, needle, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                for line in self.lines:
                    if needle in line:
                        return line
            if self.proc.poll() is not None:
                break
            time.sleep(0.05)
        with self._lock:
            tail = "\n".join(self.lines[-20:])
        raise AssertionError(f"no {needle!r} in server log within {timeout}s:\n{tail}")

    def _await_port(self):
        line = self.log_line("listening on http://")
        return int(line.rsplit(":", 1)[1].split()[0])

    def call(self, method, path, body=None, timeout=30.0):
        conn = HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            conn.request(method, path,
                         body=json.dumps(body) if body is not None else None)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def sigkill(self):
        self.proc.kill()  # SIGKILL: no handler, no drain, no flush
        self.proc.wait(timeout=10)

    def sigterm_and_wait(self, timeout=30.0):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


def _references():
    return {
        name: run_function(parse_module(src), "main", ARGS,
                           max_steps=100_000).value
        for name, src in MODULES.items()
    }


def _compile(server, name, nonce):
    # Unique nonce -> unique config key: a guaranteed cache miss, so
    # every request exercises a real compile under the current plan.
    status, data = server.call("POST", "/compile", {
        "ir": MODULES[name], "level": "vliw",
        "id": f"{name}-{nonce}", "options": {"soak_nonce": nonce},
    })
    assert status == 200 and data["status"] == "ok", (name, status, data)
    return data


def _check_binary(name, data, references, checked):
    key = (name, hash(data["ir"]))
    if key in checked:
        return
    value = run_function(parse_module(data["ir"]), "main", ARGS,
                         max_steps=100_000).value
    assert value == references[name], (
        f"{name}: served binary computed {value}, reference "
        f"{references[name]} (level {data['level_served']})"
    )
    checked.add(key)


def _quarantine_active(server):
    _status, stats = server.call("GET", "/stats")
    return stats["triage"]["quarantine"]["active"], stats


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_e13_triage_soak(tmp_path):
    references = _references()
    names = sorted(MODULES)
    state_dir = tmp_path / "state"
    promote_dir = tmp_path / "promoted"
    checked = set()

    # ---- phase A: drive until the service heals itself ------------------
    first = ServerProc(state_dir, promote_dir)
    nonce = 0
    converge_requests = 0
    active = []
    deadline = time.monotonic() + CONVERGE_BOUND
    while time.monotonic() < deadline:
        data = _compile(first, names[nonce % len(names)], nonce)
        _check_binary(names[nonce % len(names)], data, references, checked)
        nonce += 1
        converge_requests += 1
        active, converge_stats = _quarantine_active(first)
        if active:
            break
        time.sleep(0.1)  # let the triage thread breathe (single core)
    converged_at = time.monotonic() - first.started_at
    assert active == [GUILTY], (
        f"no quarantine within {CONVERGE_BOUND}s "
        f"(active={active}, triage={converge_stats['triage']})"
    )
    assert converge_stats["triage"]["recorder"]["recorded"] >= 2
    assert converge_stats["triage"]["worker"]["findings"] >= 1

    # ---- phase B: steady state at the requested level -------------------
    vliw_served = 0
    for _ in range(STEADY_REQUESTS):
        name = names[nonce % len(names)]
        data = _compile(first, name, nonce)
        nonce += 1
        _check_binary(name, data, references, checked)
        if data["level_served"] == "vliw":
            assert data["quarantined_passes"] == [GUILTY], data
            vliw_served += 1
    vliw_fraction = vliw_served / STEADY_REQUESTS
    assert vliw_fraction >= 0.95, (
        f"only {vliw_served}/{STEADY_REQUESTS} steady-state requests "
        f"served at vliw"
    )
    active, steady_stats = _quarantine_active(first)
    assert active == [GUILTY], active  # exactly the guilty pass, no other
    pre_kill = steady_stats["triage"]

    # ---- phase C: SIGKILL; the quarantine must survive the restart ------
    first.sigkill()
    second = ServerProc(state_dir, promote_dir)
    recovery_line = second.log_line("journal recovery")
    summary = json.loads(recovery_line.split("journal recovery ", 1)[1])
    assert summary["quarantined_passes"] == [GUILTY], summary
    second.log_line("triage worker running")

    # Active immediately — restored from the checkpoint, not re-learned.
    active, restart_stats = _quarantine_active(second)
    assert active == [GUILTY], active
    assert restart_stats["triage"]["quarantine"]["quarantines"] == 0, (
        "restart re-learned the quarantine instead of restoring it"
    )

    restart_vliw = 0
    restart_requests = 5
    for _ in range(restart_requests):
        name = names[nonce % len(names)]
        data = _compile(second, name, nonce)
        nonce += 1
        _check_binary(name, data, references, checked)
        if data["level_served"] == "vliw":
            assert data["quarantined_passes"] == [GUILTY], data
            restart_vliw += 1
    assert restart_vliw == restart_requests, (
        f"post-restart requests degraded: {restart_vliw}/{restart_requests} "
        f"at vliw"
    )

    # ---- promotion: the reduced finding is now a corpus case ------------
    cases = load_cases(promote_dir)
    assert cases, "triage promoted nothing to the corpus"
    assert any(c.guilty == GUILTY for c in cases), [c.guilty for c in cases]
    promoted = next(c for c in cases if c.guilty == GUILTY)
    # Injected drill fault: the clean config stays clean -> "fixed".
    assert promoted.status == "fixed"
    assert promoted.extra["origin"] == "serve-triage"
    parse_module(promoted.source)

    # ---- graceful exit --------------------------------------------------
    returncode = second.sigterm_and_wait()
    assert returncode == 0, f"SIGTERM exit code {returncode}"

    BENCH_JSON.write_text(json.dumps({
        "workers": WORKERS,
        "guilty_pass": GUILTY,
        "fault_plan": FAULT_PLAN,
        "modules": len(MODULES),
        "convergence": {
            "seconds_to_quarantine": round(converged_at, 2),
            "bound_seconds": CONVERGE_BOUND,
            "requests_before_quarantine": converge_requests,
            "bundles_recorded": pre_kill["recorder"]["recorded"],
            "triage_findings": pre_kill["worker"]["findings"],
            "quarantines_first_epoch": pre_kill["quarantine"]["quarantines"],
        },
        "steady_state": {
            "requests": STEADY_REQUESTS,
            "served_at_vliw": vliw_served,
            "vliw_fraction": round(vliw_fraction, 3),
        },
        "restart": {
            "quarantine_restored": summary["quarantined_passes"],
            "relearned_quarantines": restart_stats["triage"]["quarantine"][
                "quarantines"],
            "requests_at_vliw": restart_vliw,
        },
        "distinct_binaries_checked": len(checked),
        "promoted_cases": len(cases),
        "graceful_exit_code": returncode,
    }, indent=2) + "\n")
