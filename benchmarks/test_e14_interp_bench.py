"""E14 — closure-compiled engine vs the tree-walking interpreter.

The closure engine exists to make the differential infrastructure
cheap: ``repro run``/``repro time`` hot paths and the fuzz oracle's
execution half all sit on ``run_function``. This benchmark measures
the speedup on the real workload suite in both hot modes:

- *run path* (``repro run``): no trace, no block counts — the fuzz
  oracle's configuration when bisection is off;
- *time path* (``repro time``): ``record_trace=True``, since the
  machine timer replays the trace against the pipeline model.

The acceptance contract — geometric-mean speedup of at least 5x on
both paths — is asserted here, and the per-workload figures land in
``BENCH_interp.json`` for CI to archive. A second benchmark times a
small fuzz campaign end-to-end (generate + compile + execute) with the
oracle on each executor and records the throughput multiplier; on the
oracle's small generated programs compilation and verification dominate
a seed's cost, so the measured end-to-end gain is real but modest
(~1.1x here) and the floor is >1.05x, with the figure in the JSON.
"""

import json
import math
import time
from pathlib import Path

from repro.fuzz.driver import fuzz_seed
from repro.fuzz.oracle import OracleConfig
from repro.machine import run_function
from repro.workloads import suite

BENCH_JSON = Path("BENCH_interp.json")

REPS = 5
FUZZ_SEEDS = 12

_RESULTS = {}


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _time_engine(module, entry, args, engine, record_trace):
    # Warm the code cache so compile cost isn't billed to the run.
    run_function(
        module, entry, list(args), record_trace=record_trace, engine=engine
    )
    t0 = time.perf_counter()
    for _ in range(REPS):
        run_function(
            module, entry, list(args), record_trace=record_trace, engine=engine
        )
    return (time.perf_counter() - t0) / REPS


def run_workload_comparison():
    results = {}
    for wl in suite():
        module = wl.fresh_module()
        row = {}
        for mode, record_trace in (("run", False), ("time", True)):
            tree = _time_engine(module, wl.entry, wl.args, "tree", record_trace)
            clos = _time_engine(
                module, wl.entry, wl.args, "closure", record_trace
            )
            row[mode] = {
                "tree_s": tree,
                "closure_s": clos,
                "speedup": tree / clos,
            }
        results[wl.name] = row
    return results


def test_e14_engine_speedup(benchmark):
    results = benchmark.pedantic(run_workload_comparison, iterations=1, rounds=1)

    print()
    print(f"{'workload':<10} {'run':>8} {'time':>8}")
    for name, row in results.items():
        print(
            f"{name:<10} {row['run']['speedup']:>7.2f}x "
            f"{row['time']['speedup']:>7.2f}x"
        )
        benchmark.extra_info[f"{name}:run"] = round(row["run"]["speedup"], 2)
        benchmark.extra_info[f"{name}:time"] = round(row["time"]["speedup"], 2)

    geo = {
        mode: _geomean([row[mode]["speedup"] for row in results.values()])
        for mode in ("run", "time")
    }
    print(f"{'geomean':<10} {geo['run']:>7.2f}x {geo['time']:>7.2f}x")

    # Acceptance: at least 5x on both hot paths, suite-wide.
    assert geo["run"] >= 5.0, geo
    assert geo["time"] >= 5.0, geo

    _RESULTS["workloads"] = {
        name: {
            mode: {
                "tree_s": round(row[mode]["tree_s"], 5),
                "closure_s": round(row[mode]["closure_s"], 5),
                "speedup": round(row[mode]["speedup"], 2),
            }
            for mode in ("run", "time")
        }
        for name, row in results.items()
    }
    _RESULTS["geomean_speedup"] = {m: round(v, 2) for m, v in geo.items()}


def run_fuzz_throughput():
    times = {}
    for engine in ("tree", "closure"):
        cfg = OracleConfig(bisect=False, engine=engine)
        t0 = time.perf_counter()
        findings = []
        for seed in range(FUZZ_SEEDS):
            findings += fuzz_seed(
                seed, "vliw", cfg, config_keys=("vliw:u2:swp", "vliw:u2:modulo")
            )
        times[engine] = time.perf_counter() - t0
        assert not findings, findings
    return times


def test_e14_fuzz_throughput(benchmark):
    times = benchmark.pedantic(run_fuzz_throughput, iterations=1, rounds=1)

    multiplier = times["tree"] / times["closure"]
    print()
    print(
        f"fuzz {FUZZ_SEEDS} seeds: tree {times['tree']:.1f}s, "
        f"closure {times['closure']:.1f}s -> {multiplier:.2f}x"
    )
    benchmark.extra_info["fuzz_multiplier"] = round(multiplier, 2)

    # Execution is only part of a seed's cost (generation, compilation
    # and verification are engine-independent), so the floor is modest.
    assert multiplier > 1.05, times

    _RESULTS["fuzz"] = {
        "seeds": FUZZ_SEEDS,
        "configs": ["vliw:u2:swp", "vliw:u2:modulo"],
        "tree_s": round(times["tree"], 2),
        "closure_s": round(times["closure"], 2),
        "multiplier": round(multiplier, 2),
    }

    payload = {"benchmark": "E14-interp", "reps": REPS, **_RESULTS}
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")
